open Lxu_storage_core
(** Binary write-ahead log for the update stream.

    The WAL is a logical redo log: the durable state of a lazy
    database is [snapshot + WAL suffix], and each record is one
    {!Lxu_seglog.Update_log}-level operation.  File layout:

    {v
    header   "LXUWAL1 " magic  + mode char (D|S) + attrs char (0|1) + '\n'
    record*  lsn      8 bytes LE   (strictly increasing, from 1)
             kind     1 byte       ('I'nsert 'R'emove 'P'ack re'B'uild)
             paylen   4 bytes LE
             payload  paylen bytes (gp 8 LE [+ len 8 LE | + text])
             crc32    4 bytes LE   over lsn..payload
    v}

    Appends go through a {e group-commit buffer}: {!append} only
    assigns the LSN and encodes the record; {!commit} persists every
    buffered record with a single device write.  {!scan} validates a
    captured byte string record by record and stops — never raises —
    at the first invalid one (torn header or body, checksum mismatch,
    unknown kind, malformed payload, non-monotonic LSN), reporting the
    longest valid prefix so recovery can truncate the tail. *)

type op =
  | Insert of { gp : int; text : string }
  | Remove of { gp : int; len : int }
  | Pack of { gp : int; len : int }
  | Rebuild

type header = { mode : Lxu_seglog.Update_log.mode; index_attributes : bool }

(** {1 Reading} *)

type record = { lsn : int; op : op; end_off : int  (** byte offset just past this record *) }

type scan_result = {
  header : header;
  records : record list;  (** in LSN order *)
  valid_bytes : int;  (** longest valid prefix, header included *)
  total_bytes : int;
  corruption : string option;  (** why the scan stopped early, with byte offset *)
}

val header_bytes : int
(** Size of the file header (the first record boundary). *)

val scan : ?path:string -> string -> scan_result
(** Validates WAL bytes.  Invalid {e records} truncate (see above);
    only an unreadable {e header} raises, since without it not even
    the database configuration is known.
    @raise Failure on a bad header; the message includes [path] (when
    given) and the byte offset. *)

(** {1 Writing} *)

type t

val create : ?next_lsn:int -> device:Sim_file.t -> header -> t
(** A fresh log on [device]: writes the header immediately (one
    device write) and numbers the next record [next_lsn] (default 1,
    or [checkpoint lsn + 1] after a rotation). *)

val attach : device:Sim_file.t -> next_lsn:int -> t
(** Resumes appending to a device whose header already exists — the
    post-recovery path. *)

val append : t -> op -> int
(** Buffers one record and returns its LSN.  Nothing reaches the
    device until {!commit}. *)

val next_lsn : t -> int

val buffered : t -> int
(** Records currently awaiting {!commit}. *)

val commit : ?sync:bool -> t -> unit
(** Persists the buffered records as one device write (the group
    commit); [sync] (default false) additionally fsyncs file-backed
    devices.  No-op when nothing is buffered. *)

val device : t -> Sim_file.t
