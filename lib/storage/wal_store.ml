open Lxu_seglog

type t = {
  dir : string;
  mutable wal : Wal.t;
  mutable batching : bool;
  mutable closed : bool;
}

let wal_path dir = Filename.concat dir "wal"
let snapshot_path dir = Filename.concat dir "snapshot"
let dir t = t.dir
let next_lsn t = Wal.next_lsn t.wal

let mkdir_p dir =
  let rec make d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  make dir

let fresh ~dir ~mode ~index_attributes =
  mkdir_p dir;
  let snap = snapshot_path dir in
  if Sys.file_exists snap then Sys.remove snap;
  let device = Sim_file.open_path (wal_path dir) in
  let wal = Wal.create ~device { Wal.mode; index_attributes } in
  Sim_file.flush device;
  { dir; wal; batching = false; closed = false }

let check_open t op = if t.closed then invalid_arg ("Wal_store." ^ op ^ ": store is closed")

let commit ?sync t =
  check_open t "commit";
  Wal.commit ?sync t.wal

let log_op t op =
  check_open t "log_op";
  ignore (Wal.append t.wal op);
  if not t.batching then Wal.commit t.wal

let log_ops t ops =
  check_open t "log_ops";
  List.iter (fun op -> ignore (Wal.append t.wal op)) ops;
  if not t.batching then Wal.commit t.wal

let batch t f =
  check_open t "batch";
  if t.batching then invalid_arg "Wal_store.batch: already inside a batch";
  t.batching <- true;
  Fun.protect
    ~finally:(fun () ->
      t.batching <- false;
      Wal.commit t.wal)
    f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Rotate the WAL: a fresh header-only file built beside the live one
   and renamed over it, so a crash leaves either the old complete WAL
   or the new empty one — never a half-written header. *)
let rotate_wal t ~mode ~index_attributes ~next_lsn =
  let path = wal_path t.dir in
  let tmp = path ^ ".tmp" in
  let old_device = Wal.device t.wal in
  let device = Sim_file.open_path tmp in
  let wal = Wal.create ~next_lsn ~device { Wal.mode; index_attributes } in
  Sim_file.sync device;
  Sys.rename tmp path;
  Sim_file.close old_device;
  t.wal <- wal

let checkpoint t log =
  check_open t "checkpoint";
  if t.batching then invalid_arg "Wal_store.checkpoint: inside a batch";
  Wal.commit t.wal;
  let lsn = Wal.next_lsn t.wal - 1 in
  Recovery.write_snapshot ~path:(snapshot_path t.dir) ~lsn log;
  rotate_wal t ~mode:(Update_log.mode log) ~index_attributes:(Update_log.indexes_attributes log)
    ~next_lsn:(lsn + 1)

let recover ~dir =
  let snap_path = snapshot_path dir in
  let wpath = wal_path dir in
  let base = if Sys.file_exists snap_path then Some (Recovery.read_snapshot ~path:snap_path) else None in
  let wal_bytes = if Sys.file_exists wpath then Some (read_file wpath) else None in
  let log, report =
    match (base, wal_bytes) with
    | None, None -> failwith (Printf.sprintf "%s: nothing to recover (no snapshot, no wal)" dir)
    | base, Some bytes -> (
      (* Replay mutates the base log in place; recovery owns it. *)
      try Recovery.recover_bytes ~path:wpath ?base bytes
      with Failure msg -> (
        (* Unreadable WAL header.  With a snapshot the state is still
           well-defined: everything up to the checkpoint. *)
        match base with
        | None -> failwith msg
        | Some (lsn, log) ->
          ( log,
            {
              Recovery.snapshot_lsn = lsn;
              records_total = 0;
              records_applied = 0;
              records_skipped = 0;
              valid_bytes = 0;
              total_bytes = String.length bytes;
              corruption = Some msg;
              last_lsn = lsn;
            } )))
    | Some (lsn, log), None ->
      ( log,
        {
          Recovery.snapshot_lsn = lsn;
          records_total = 0;
          records_applied = 0;
          records_skipped = 0;
          valid_bytes = 0;
          total_bytes = 0;
          corruption = None;
          last_lsn = lsn;
        } )
  in
  let next_lsn = report.Recovery.last_lsn + 1 in
  let t = { dir; wal = Wal.attach ~device:(Sim_file.in_memory ()) ~next_lsn; batching = false; closed = false } in
  let mode = Update_log.mode log and index_attributes = Update_log.indexes_attributes log in
  (if report.Recovery.valid_bytes = 0 then
     (* Missing or headerless WAL: start a clean one. *)
     let device = Sim_file.open_path wpath in
     t.wal <- Wal.create ~next_lsn ~device { Wal.mode; index_attributes }
   else begin
     if report.Recovery.valid_bytes < report.Recovery.total_bytes then begin
       (* Repair the torn/corrupt tail so future appends extend a
          fully valid log. *)
       let d = Sim_file.open_path ~append:true wpath in
       Sim_file.truncate_to d report.Recovery.valid_bytes;
       Sim_file.close d
     end;
     t.wal <- Wal.attach ~device:(Sim_file.open_path ~append:true wpath) ~next_lsn
   end);
  (log, t, report)

let close t =
  if not t.closed then begin
    Wal.commit t.wal;
    Sim_file.close (Wal.device t.wal);
    t.closed <- true
  end
