open Lxu_storage_core
open Lxu_seglog

type t = {
  dir : string;
  mutable wal : Wal.t;
  mutable batching : bool;
  mutable closed : bool;
}

let wal_path dir = Filename.concat dir "wal"
let snapshot_path dir = Filename.concat dir "snapshot"
let dir t = t.dir
let next_lsn t = Wal.next_lsn t.wal

let mkdir_p dir =
  let rec make d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  make dir

let fresh ~dir ~mode ~index_attributes =
  mkdir_p dir;
  let snap = snapshot_path dir in
  if Sys.file_exists snap then begin
    Sys.remove snap;
    (* Make the unlink durable before the new WAL exists: a crash
       in between must not resurrect the old snapshot beside a log
       it has nothing to do with. *)
    Sim_file.fsync_dir dir
  end;
  let device = Sim_file.open_path (wal_path dir) in
  let wal = Wal.create ~device { Wal.mode; index_attributes } in
  Sim_file.flush device;
  { dir; wal; batching = false; closed = false }

let check_open t op = if t.closed then invalid_arg ("Wal_store." ^ op ^ ": store is closed")

let commit ?sync t =
  check_open t "commit";
  Wal.commit ?sync t.wal

let log_op t op =
  check_open t "log_op";
  ignore (Wal.append t.wal op);
  if not t.batching then Wal.commit t.wal

let log_ops t ops =
  check_open t "log_ops";
  List.iter (fun op -> ignore (Wal.append t.wal op)) ops;
  if not t.batching then Wal.commit t.wal

let batch t f =
  check_open t "batch";
  if t.batching then invalid_arg "Wal_store.batch: already inside a batch";
  t.batching <- true;
  Fun.protect
    ~finally:(fun () ->
      t.batching <- false;
      Wal.commit t.wal)
    f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let wal_bytes t =
  check_open t "wal_bytes";
  Sim_file.size (Wal.device t.wal)

(* Copies [src] to [dst] via the full atomic-rename protocol: a crash
   mid-backup leaves either the previous backup file or the new one,
   never a torn copy. *)
let copy_durable ~src ~dst =
  let data = read_file src in
  let tmp = dst ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp dst;
  Sim_file.fsync_dir (Filename.dirname dst)

let backup t ~dir:dst =
  check_open t "backup";
  if t.batching then invalid_arg "Wal_store.backup: inside a batch";
  if Filename.concat dst "" = Filename.concat t.dir "" then
    invalid_arg "Wal_store.backup: target is the live directory";
  Wal.commit ~sync:true t.wal;
  mkdir_p dst;
  let snap = snapshot_path t.dir in
  if Sys.file_exists snap then copy_durable ~src:snap ~dst:(snapshot_path dst)
  else if Sys.file_exists (snapshot_path dst) then begin
    (* The live dir has no snapshot (never checkpointed): a stale one
       left in the target would change what the backup restores to. *)
    Sys.remove (snapshot_path dst);
    Sim_file.fsync_dir dst
  end;
  copy_durable ~src:(wal_path t.dir) ~dst:(wal_path dst);
  Wal.next_lsn t.wal - 1

(* Rotate the WAL: a fresh header-only file built beside the live one
   and renamed over it, so a crash leaves either the old complete WAL
   or the new empty one — never a half-written header.  The directory
   fsync after the rename is the truncation's durability point: until
   it lands, a power cut may resurrect the old log — which is safe
   only because the snapshot covering it was itself made durable
   (file fsync + rename + dir fsync) before we got here, so the
   resurrected records replay as skipped duplicates.  The ordering
   snapshot-durable-then-truncate is the invariant; the dir fsync here
   closes the last window where the rename itself could be lost. *)
let rotate_wal t ~mode ~index_attributes ~next_lsn =
  let path = wal_path t.dir in
  let tmp = path ^ ".tmp" in
  let old_device = Wal.device t.wal in
  let device = Sim_file.open_path tmp in
  ignore (Wal.create ~next_lsn ~device { Wal.mode; index_attributes } : Wal.t);
  Sim_file.sync device;
  Sys.rename tmp path;
  Sim_file.fsync_dir t.dir;
  Sim_file.close old_device;
  (* The rename moved the inode out from under [device]'s recorded
     path: writes through the open channel would still land in the
     right file, but path-based introspection ([Sim_file.size],
     [durable_contents]) would stat the vanished [tmp].  Reattach at
     the real path. *)
  Sim_file.close device;
  t.wal <- Wal.attach ~device:(Sim_file.open_path ~append:true path) ~next_lsn

let checkpoint ?page_checkpoint t log =
  check_open t "checkpoint";
  if t.batching then invalid_arg "Wal_store.checkpoint: inside a batch";
  Wal.commit t.wal;
  let lsn = Wal.next_lsn t.wal - 1 in
  (* Page store first, snapshot second: recovery attaches paged
     indexes only when the two LSNs agree, so every crash window
     (page meta ahead of the snapshot, or behind it) degrades to the
     sound rebuild path rather than attaching mismatched state. *)
  (match page_checkpoint with Some f -> f lsn | None -> ());
  Recovery.write_snapshot ~path:(snapshot_path t.dir) ~lsn log;
  rotate_wal t ~mode:(Update_log.mode log) ~index_attributes:(Update_log.indexes_attributes log)
    ~next_lsn:(lsn + 1)

(* Shared front half of [recover] and [restore_to]: read snapshot +
   WAL and replay in memory, optionally bounded at [upto_lsn].
   Touches nothing on disk. *)
let replay_dir ?pstore ?upto_lsn ~dir () =
  let snap_path = snapshot_path dir in
  let wpath = wal_path dir in
  let base =
    if Sys.file_exists snap_path then Some (Recovery.read_snapshot ?pstore ~path:snap_path ())
    else None
  in
  let wal_bytes = if Sys.file_exists wpath then Some (read_file wpath) else None in
  match (base, wal_bytes) with
  | None, None -> failwith (Printf.sprintf "%s: nothing to recover (no snapshot, no wal)" dir)
  | base, Some bytes -> (
    (* Replay mutates the base log in place; recovery owns it. *)
    try Recovery.recover_bytes ?pstore ~path:wpath ?base ?upto_lsn bytes
    with Failure msg -> (
        (* Unreadable WAL header.  With a snapshot the state is still
           well-defined: everything up to the checkpoint. *)
        match base with
        | None -> failwith msg
        | Some (lsn, log) ->
          ( log,
            {
              Recovery.snapshot_lsn = lsn;
              records_total = 0;
              records_applied = 0;
              records_skipped = 0;
              valid_bytes = 0;
              total_bytes = String.length bytes;
              corruption = Some msg;
              last_lsn = lsn;
            } )))
  | Some (lsn, log), None ->
    ( log,
      {
        Recovery.snapshot_lsn = lsn;
        records_total = 0;
        records_applied = 0;
        records_skipped = 0;
        valid_bytes = 0;
        total_bytes = 0;
        corruption = None;
        last_lsn = lsn;
      } )

let restore_to ~dir ~lsn =
  if lsn < 0 then invalid_arg "Wal_store.restore_to: negative lsn";
  let log, report = replay_dir ~upto_lsn:lsn ~dir () in
  if report.Recovery.snapshot_lsn > lsn then
    failwith
      (Printf.sprintf
         "%s: cannot restore to lsn %d: the checkpoint snapshot is already at lsn %d \
          (earlier states need a backup taken before that checkpoint)"
         dir lsn report.Recovery.snapshot_lsn);
  (log, report)

let recover ?pstore ~dir () =
  let wpath = wal_path dir in
  let log, report = replay_dir ?pstore ~dir () in
  let next_lsn = report.Recovery.last_lsn + 1 in
  let t = { dir; wal = Wal.attach ~device:(Sim_file.in_memory ()) ~next_lsn; batching = false; closed = false } in
  let mode = Update_log.mode log and index_attributes = Update_log.indexes_attributes log in
  (if report.Recovery.valid_bytes = 0 then
     (* Missing or headerless WAL: start a clean one. *)
     let device = Sim_file.open_path wpath in
     t.wal <- Wal.create ~next_lsn ~device { Wal.mode; index_attributes }
   else begin
     if report.Recovery.valid_bytes < report.Recovery.total_bytes then begin
       (* Repair the torn/corrupt tail so future appends extend a
          fully valid log. *)
       let d = Sim_file.open_path ~append:true wpath in
       Sim_file.truncate_to d report.Recovery.valid_bytes;
       Sim_file.close d
     end;
     t.wal <- Wal.attach ~device:(Sim_file.open_path ~append:true wpath) ~next_lsn
   end);
  (log, t, report)

let close t =
  if not t.closed then begin
    Wal.commit t.wal;
    Sim_file.close (Wal.device t.wal);
    t.closed <- true
  end
