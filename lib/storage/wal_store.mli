(** A durable home for one database: a directory holding [snapshot]
    (the last checkpoint, with its LSN) and [wal] (the redo log of
    everything since).

    Lifecycle: {!fresh} initialises the directory for a new database;
    {!log_op}/{!commit} (or {!batch} for group commit) persist each
    update; {!checkpoint} snapshots the current log and rotates the
    WAL; {!recover} rebuilds the state after a crash, truncating any
    torn or corrupt WAL tail in place so the next writer appends to a
    clean log. *)

type t

val wal_path : string -> string
val snapshot_path : string -> string

val dir : t -> string
val next_lsn : t -> int

val wal_bytes : t -> int
(** Current size of the live WAL file — the maintenance scheduler's
    rolling-checkpoint trigger. *)

val fresh :
  dir:string -> mode:Lxu_seglog.Update_log.mode -> index_attributes:bool -> t
(** Creates [dir] if needed, removes any previous snapshot, and
    starts an empty WAL.  Existing contents are discarded: this is
    for {e new} databases; use {!recover} to resume one. *)

val log_op : t -> Wal.op -> unit
(** Appends one record and commits it — unless inside {!batch}, where
    records accumulate in the group-commit buffer. *)

val log_ops : t -> Wal.op list -> unit
(** Appends the records as one group and commits them with a single
    device write (none at all inside {!batch}, whose commit covers
    them).  A crash mid-write persists a prefix of the group — each
    record replays individually, so recovery yields the state after
    that prefix. *)

val commit : ?sync:bool -> t -> unit

val batch : t -> (unit -> 'a) -> 'a
(** Runs [f] with auto-commit off, then commits every record it
    logged with one device write.  On an exception the records logged
    so far are still committed (they describe updates that did
    happen).  Not reentrant. *)

val checkpoint : ?page_checkpoint:(int -> unit) -> t -> Lxu_seglog.Update_log.t -> unit
(** Writes a snapshot at the current LSN (temp file + fsync + rename +
    directory fsync), then rotates the WAL to empty (same protocol).
    A crash between the two steps is safe: recovery skips replayed
    records at or below the snapshot LSN — and because the snapshot is
    durable {e before} the rotation's directory fsync, a resurrected
    pre-rotation log can never be the only copy of anything.

    [page_checkpoint lsn] (for paged databases) is called with the
    checkpoint LSN after the WAL commit and {e before} the snapshot is
    written — it should durably checkpoint the page store at that LSN
    (see {!Lxu_storage_core.Page_store.checkpoint}).  Recovery attaches
    the paged indexes only when the page store's checkpoint LSN equals
    the snapshot's, so a crash anywhere between the two degrades to a
    sound rebuild rather than attaching mismatched state. *)

val backup : t -> dir:string -> int
(** [backup t ~dir] commits and fsyncs the live WAL, then copies the
    snapshot (if any) and the WAL into [dir] — each through the
    atomic-rename protocol, snapshot first, so a crash mid-backup
    leaves [dir] restorable to {e some} committed point, never torn.
    Returns the last committed LSN (what {!restore_to} on the backup
    can reach).  Call with the store quiescent (e.g. under the
    writer lock).
    @raise Invalid_argument if [dir] is the live directory or the
    store is inside {!batch}. *)

val restore_to : dir:string -> lsn:int -> Lxu_seglog.Update_log.t * Recovery.report
(** Point-in-time restore: rebuilds the state as of committed LSN
    [lsn] from [dir]'s snapshot + WAL prefix, in memory — [dir] (a
    live directory or a {!backup}) is never written, so later history
    stays intact and the result must not be re-attached for appending.
    Records past [lsn] are skipped, not treated as corruption.
    @raise Failure when [dir] holds nothing recoverable, or its
    snapshot already covers more history than [lsn] (restore needs a
    backup from before that checkpoint). *)

val recover :
  ?pstore:Lxu_storage_core.Page_store.t ->
  dir:string -> unit -> Lxu_seglog.Update_log.t * t * Recovery.report
(** Restores [snapshot + WAL suffix].  A corrupt tail is truncated
    from the WAL file; if the WAL header itself is unreadable but a
    snapshot exists, the snapshot wins and the WAL is re-initialised.
    With [pstore] the recovered log keeps its indexes on pages in that
    store, attached as-is exactly when the store's durable checkpoint
    LSN matches the snapshot's (see {!Recovery.read_snapshot}).
    @raise Failure when nothing recoverable exists (no snapshot and
    no readable WAL header); messages include the path. *)

val close : t -> unit
(** Commits buffered records and closes the device; idempotent. *)
