(** A durable home for one database: a directory holding [snapshot]
    (the last checkpoint, with its LSN) and [wal] (the redo log of
    everything since).

    Lifecycle: {!fresh} initialises the directory for a new database;
    {!log_op}/{!commit} (or {!batch} for group commit) persist each
    update; {!checkpoint} snapshots the current log and rotates the
    WAL; {!recover} rebuilds the state after a crash, truncating any
    torn or corrupt WAL tail in place so the next writer appends to a
    clean log. *)

type t

val wal_path : string -> string
val snapshot_path : string -> string

val dir : t -> string
val next_lsn : t -> int

val fresh :
  dir:string -> mode:Lxu_seglog.Update_log.mode -> index_attributes:bool -> t
(** Creates [dir] if needed, removes any previous snapshot, and
    starts an empty WAL.  Existing contents are discarded: this is
    for {e new} databases; use {!recover} to resume one. *)

val log_op : t -> Wal.op -> unit
(** Appends one record and commits it — unless inside {!batch}, where
    records accumulate in the group-commit buffer. *)

val log_ops : t -> Wal.op list -> unit
(** Appends the records as one group and commits them with a single
    device write (none at all inside {!batch}, whose commit covers
    them).  A crash mid-write persists a prefix of the group — each
    record replays individually, so recovery yields the state after
    that prefix. *)

val commit : ?sync:bool -> t -> unit

val batch : t -> (unit -> 'a) -> 'a
(** Runs [f] with auto-commit off, then commits every record it
    logged with one device write.  On an exception the records logged
    so far are still committed (they describe updates that did
    happen).  Not reentrant. *)

val checkpoint : t -> Lxu_seglog.Update_log.t -> unit
(** Writes a snapshot at the current LSN (temp file + rename), then
    rotates the WAL to empty.  A crash between the two steps is safe:
    recovery skips replayed records at or below the snapshot LSN. *)

val recover : dir:string -> Lxu_seglog.Update_log.t * t * Recovery.report
(** Restores [snapshot + WAL suffix].  A corrupt tail is truncated
    from the WAL file; if the WAL header itself is unreadable but a
    snapshot exists, the snapshot wins and the WAL is re-initialised.
    @raise Failure when nothing recoverable exists (no snapshot and
    no readable WAL header); messages include the path. *)

val close : t -> unit
(** Commits buffered records and closes the device; idempotent. *)
