exception Torn_page of { pid : int; reason : string }

let () =
  Printexc.register_printer (function
    | Torn_page { pid; reason } ->
      Some (Printf.sprintf "Page_file.Torn_page(page %d: %s)" pid reason)
    | _ -> None)

(* On-disk page [pid] occupies bytes [pid * page_size, (pid+1) *
   page_size):

     bytes 0-3   CRC32 (LE) of bytes 4 .. page_size-1
     bytes 4-7   pid echo (LE) — catches misdirected writes
     bytes 8-..  payload

   The whole page is written in one device write, so the fault
   injector's [Truncate_tail]/[Bit_flip] on that write is exactly a
   torn or corrupt page, and the CRC catches it on read. *)

let header_bytes = 8

type t = { device : Sim_file.t; page_size : int; scratch : Buffer.t }

let min_page_size = 128

let create ~device ~page_size =
  if page_size < min_page_size then
    invalid_arg (Printf.sprintf "Page_file.create: page_size %d < %d" page_size min_page_size);
  { device; page_size; scratch = Buffer.create page_size }

let device t = t.device
let page_size t = t.page_size
let payload_bytes t = t.page_size - header_bytes

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

(* Payload -> one full-page device write.  [payload] must be exactly
   [payload_bytes t] long. *)
let write t pid payload =
  if Bytes.length payload <> payload_bytes t then
    invalid_arg
      (Printf.sprintf "Page_file.write: payload is %d bytes, page holds %d"
         (Bytes.length payload) (payload_bytes t));
  if pid < 0 then invalid_arg "Page_file.write: negative pid";
  let buf = t.scratch in
  Buffer.clear buf;
  put_u32 buf pid;
  Buffer.add_bytes buf payload;
  let body = Buffer.contents buf in
  let crc = Crc32.string body in
  Buffer.clear buf;
  put_u32 buf crc;
  Buffer.add_string buf body;
  Sim_file.write_at t.device ~off:(pid * t.page_size) (Buffer.contents buf)

(* Reads page [pid] into [payload] (exactly [payload_bytes] long).
   @raise Torn_page on a short read, CRC mismatch or pid-echo
   mismatch — all the signatures of a write that never fully
   happened. *)
let read t pid payload =
  if Bytes.length payload <> payload_bytes t then
    invalid_arg "Page_file.read: payload buffer has the wrong size";
  if pid < 0 then invalid_arg "Page_file.read: negative pid";
  let page = Bytes.create t.page_size in
  let got = Sim_file.read_at t.device ~off:(pid * t.page_size) page in
  if got < t.page_size then
    raise (Torn_page { pid; reason = Printf.sprintf "short read (%d of %d bytes)" got t.page_size });
  let stored_crc = get_u32 page 0 in
  let crc = Crc32.bytes_sub page ~pos:4 ~len:(t.page_size - 4) in
  if crc <> stored_crc then
    raise (Torn_page { pid; reason = Printf.sprintf "crc mismatch (stored %08x, computed %08x)" stored_crc crc });
  let echo = get_u32 page 4 in
  if echo <> pid then
    raise (Torn_page { pid; reason = Printf.sprintf "pid echo %d (misdirected write)" echo });
  Bytes.blit page header_bytes payload 0 (payload_bytes t)
