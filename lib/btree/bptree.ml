(* Classic order-[branching] B+-tree with nodes as mutable arrays.

   Conventions:
   - An internal node with [count] children has [count - 1] separator
     keys; child [i] covers keys [k] with [keys.(i-1) <= k < keys.(i)].
   - A leaf holds up to [branching] keys; an internal node up to
     [branching] children.  Arrays have one slot of slack so that
     insertion can temporarily overflow before splitting.
   - Minimum occupancy (except for the root): leaves hold at least
     [branching / 2] keys, internal nodes at least
     [(branching + 1) / 2] children.  Deletion rebalances by borrowing
     from a sibling or merging with it.

   Arrays need a filler element to be allocated, so leaves are born
   from an actual first insertion and internal nodes from an actual
   split; the empty tree is a zero-capacity leaf replaced on first
   insert. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (K : ORDERED) = struct
  type 'v leaf = {
    mutable lkeys : K.t array;
    mutable lvals : 'v array;
    mutable lcount : int;
    mutable next : 'v leaf option;
  }

  type 'v node = Leaf of 'v leaf | Internal of 'v internal

  and 'v internal = {
    mutable ikeys : K.t array;
    mutable children : 'v node array;
    mutable ccount : int;  (* number of children; separators = ccount - 1 *)
  }

  type 'v t = {
    branching : int;
    mutable root : 'v node;
    mutable size : int;
  }

  let empty_leaf () = { lkeys = [||]; lvals = [||]; lcount = 0; next = None }

  let create ?(branching = 32) () =
    if branching < 4 then invalid_arg "Bptree.create: branching < 4";
    { branching; root = Leaf (empty_leaf ()); size = 0 }

  let length t = t.size
  let is_empty t = t.size = 0

  (* Position of the child of [node] that covers key [k]: the number of
     separators strictly <= k ... more precisely the first index [i]
     such that [k < keys.(i)], found by binary search. *)
  let child_index inode k =
    let nkeys = inode.ccount - 1 in
    let lo = ref 0 and hi = ref nkeys in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare k inode.ikeys.(mid) < 0 then hi := mid else lo := mid + 1
    done;
    !lo

  (* First index [i] in the leaf with [lkeys.(i) >= k]; may be lcount. *)
  let leaf_lower_bound leaf k =
    let lo = ref 0 and hi = ref leaf.lcount in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare leaf.lkeys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let rec find_leaf node k =
    match node with
    | Leaf leaf -> leaf
    | Internal inode -> find_leaf inode.children.(child_index inode k) k

  let find t k =
    let leaf = find_leaf t.root k in
    let i = leaf_lower_bound leaf k in
    if i < leaf.lcount && K.compare leaf.lkeys.(i) k = 0 then Some leaf.lvals.(i)
    else None

  let mem t k = Option.is_some (find t k)

  (* --- insertion ------------------------------------------------- *)

  (* Result of inserting below: either done in place, or the child
     split and [key] must be routed to the new right sibling. *)
  type 'v split = NoSplit | Split of K.t * 'v node

  let array_insert a count i x =
    Array.blit a i a (i + 1) (count - i);
    a.(i) <- x

  let ensure_leaf_capacity t leaf =
    (* Capacity branching + 1 leaves room for a temporary overflow. *)
    let cap = t.branching + 1 in
    if Array.length leaf.lkeys < cap && leaf.lcount > 0 then begin
      let k0 = leaf.lkeys.(0) and v0 = leaf.lvals.(0) in
      let nk = Array.make cap k0 and nv = Array.make cap v0 in
      Array.blit leaf.lkeys 0 nk 0 leaf.lcount;
      Array.blit leaf.lvals 0 nv 0 leaf.lcount;
      leaf.lkeys <- nk;
      leaf.lvals <- nv
    end

  let leaf_insert t leaf k v =
    if leaf.lcount = 0 then begin
      let cap = t.branching + 1 in
      leaf.lkeys <- Array.make cap k;
      leaf.lvals <- Array.make cap v;
      leaf.lcount <- 1;
      `Inserted
    end else begin
      let i = leaf_lower_bound leaf k in
      if i < leaf.lcount && K.compare leaf.lkeys.(i) k = 0 then begin
        leaf.lvals.(i) <- v;
        `Replaced
      end else begin
        ensure_leaf_capacity t leaf;
        array_insert leaf.lkeys leaf.lcount i k;
        array_insert leaf.lvals leaf.lcount i v;
        leaf.lcount <- leaf.lcount + 1;
        `Inserted
      end
    end

  let split_leaf t leaf =
    let mid = leaf.lcount / 2 in
    let right_count = leaf.lcount - mid in
    let cap = t.branching + 1 in
    let rk = Array.make cap leaf.lkeys.(mid) in
    let rv = Array.make cap leaf.lvals.(mid) in
    Array.blit leaf.lkeys mid rk 0 right_count;
    Array.blit leaf.lvals mid rv 0 right_count;
    let right = { lkeys = rk; lvals = rv; lcount = right_count; next = leaf.next } in
    leaf.lcount <- mid;
    leaf.next <- Some right;
    Split (rk.(0), Leaf right)

  let split_internal t inode =
    (* Children [0..mid] stay; separator [mid] moves up; children
       [mid+1 ..] go right. *)
    let mid = inode.ccount / 2 in
    let up_key = inode.ikeys.(mid - 1) in
    let right_children = inode.ccount - mid in
    let kcap = t.branching + 1 and ccap = t.branching + 2 in
    let rk = Array.make kcap up_key in
    let rc = Array.make ccap inode.children.(mid) in
    Array.blit inode.ikeys mid rk 0 (inode.ccount - 1 - mid);
    Array.blit inode.children mid rc 0 right_children;
    let right = { ikeys = rk; children = rc; ccount = right_children } in
    inode.ccount <- mid;
    Split (up_key, Internal right)

  let rec insert_node t node k v =
    match node with
    | Leaf leaf -> begin
      match leaf_insert t leaf k v with
      | `Replaced -> NoSplit
      | `Inserted ->
        t.size <- t.size + 1;
        if leaf.lcount > t.branching then split_leaf t leaf else NoSplit
    end
    | Internal inode -> begin
      let i = child_index inode k in
      match insert_node t inode.children.(i) k v with
      | NoSplit -> NoSplit
      | Split (sep, right) ->
        array_insert inode.ikeys (inode.ccount - 1) i sep;
        array_insert inode.children inode.ccount (i + 1) right;
        inode.ccount <- inode.ccount + 1;
        if inode.ccount > t.branching then split_internal t inode else NoSplit
    end

  let insert t k v =
    match insert_node t t.root k v with
    | NoSplit -> ()
    | Split (sep, right) ->
      let kcap = t.branching + 1 and ccap = t.branching + 2 in
      let ik = Array.make kcap sep in
      let ic = Array.make ccap t.root in
      ic.(1) <- right;
      t.root <- Internal { ikeys = ik; children = ic; ccount = 2 }

  (* --- deletion --------------------------------------------------- *)

  let min_leaf_keys t = t.branching / 2
  let min_children t = (t.branching + 1) / 2

  let array_remove a count i =
    Array.blit a (i + 1) a i (count - i - 1)

  let leaf_underflows t leaf = leaf.lcount < min_leaf_keys t
  let internal_underflows t inode = inode.ccount < min_children t

  (* Fix an underflowing child [i] of [parent] by borrowing from or
     merging with an adjacent sibling. *)
  let fix_child t parent i =
    let child = parent.children.(i) in
    let borrow_from_left li =
      match (parent.children.(li), child) with
      | Leaf l, Leaf c ->
        ensure_leaf_capacity t c;
        array_insert c.lkeys c.lcount 0 l.lkeys.(l.lcount - 1);
        array_insert c.lvals c.lcount 0 l.lvals.(l.lcount - 1);
        c.lcount <- c.lcount + 1;
        l.lcount <- l.lcount - 1;
        parent.ikeys.(li) <- c.lkeys.(0)
      | Internal l, Internal c ->
        array_insert c.ikeys (c.ccount - 1) 0 parent.ikeys.(li);
        array_insert c.children c.ccount 0 l.children.(l.ccount - 1);
        c.ccount <- c.ccount + 1;
        parent.ikeys.(li) <- l.ikeys.(l.ccount - 2);
        l.ccount <- l.ccount - 1
      | _ -> assert false
    in
    let borrow_from_right ri =
      match (child, parent.children.(ri)) with
      | Leaf c, Leaf r ->
        ensure_leaf_capacity t c;
        c.lkeys.(c.lcount) <- r.lkeys.(0);
        c.lvals.(c.lcount) <- r.lvals.(0);
        c.lcount <- c.lcount + 1;
        array_remove r.lkeys r.lcount 0;
        array_remove r.lvals r.lcount 0;
        r.lcount <- r.lcount - 1;
        parent.ikeys.(i) <- r.lkeys.(0)
      | Internal c, Internal r ->
        c.ikeys.(c.ccount - 1) <- parent.ikeys.(i);
        c.children.(c.ccount) <- r.children.(0);
        c.ccount <- c.ccount + 1;
        parent.ikeys.(i) <- r.ikeys.(0);
        array_remove r.ikeys (r.ccount - 1) 0;
        array_remove r.children r.ccount 0;
        r.ccount <- r.ccount - 1
      | _ -> assert false
    in
    (* Merge child [j] and child [j+1] into child [j]. *)
    let merge j =
      begin
        match (parent.children.(j), parent.children.(j + 1)) with
        | Leaf l, Leaf r ->
          ensure_leaf_capacity t l;
          if Array.length l.lkeys < l.lcount + r.lcount then begin
            let cap = max (t.branching + 1) (l.lcount + r.lcount) in
            let nk = Array.make cap l.lkeys.(0) and nv = Array.make cap l.lvals.(0) in
            Array.blit l.lkeys 0 nk 0 l.lcount;
            Array.blit l.lvals 0 nv 0 l.lcount;
            l.lkeys <- nk;
            l.lvals <- nv
          end;
          Array.blit r.lkeys 0 l.lkeys l.lcount r.lcount;
          Array.blit r.lvals 0 l.lvals l.lcount r.lcount;
          l.lcount <- l.lcount + r.lcount;
          l.next <- r.next
        | Internal l, Internal r ->
          l.ikeys.(l.ccount - 1) <- parent.ikeys.(j);
          Array.blit r.ikeys 0 l.ikeys l.ccount (r.ccount - 1);
          Array.blit r.children 0 l.children l.ccount r.ccount;
          l.ccount <- l.ccount + r.ccount
        | _ -> assert false
      end;
      array_remove parent.ikeys (parent.ccount - 1) j;
      array_remove parent.children parent.ccount (j + 1);
      parent.ccount <- parent.ccount - 1
    in
    let left_can_lend =
      i > 0
      &&
      match parent.children.(i - 1) with
      | Leaf l -> l.lcount > min_leaf_keys t
      | Internal n -> n.ccount > min_children t
    in
    let right_can_lend =
      i < parent.ccount - 1
      &&
      match parent.children.(i + 1) with
      | Leaf r -> r.lcount > min_leaf_keys t
      | Internal n -> n.ccount > min_children t
    in
    if left_can_lend then borrow_from_left (i - 1)
    else if right_can_lend then borrow_from_right (i + 1)
    else if i > 0 then merge (i - 1)
    else merge i

  let rec remove_node t node k =
    match node with
    | Leaf leaf ->
      let i = leaf_lower_bound leaf k in
      if i < leaf.lcount && K.compare leaf.lkeys.(i) k = 0 then begin
        array_remove leaf.lkeys leaf.lcount i;
        array_remove leaf.lvals leaf.lcount i;
        leaf.lcount <- leaf.lcount - 1;
        t.size <- t.size - 1;
        true
      end else false
    | Internal inode ->
      let i = child_index inode k in
      let removed = remove_node t inode.children.(i) k in
      if removed then begin
        let underflow =
          match inode.children.(i) with
          | Leaf l -> leaf_underflows t l
          | Internal n -> internal_underflows t n
        in
        if underflow then fix_child t inode i
      end;
      removed

  let remove t k =
    let removed = remove_node t t.root k in
    (match t.root with
    | Internal inode when inode.ccount = 1 -> t.root <- inode.children.(0)
    | _ -> ());
    removed

  (* --- traversal -------------------------------------------------- *)

  let rec leftmost_leaf = function
    | Leaf leaf -> leaf
    | Internal inode -> leftmost_leaf inode.children.(0)

  let rec rightmost_leaf = function
    | Leaf leaf -> leaf
    | Internal inode -> rightmost_leaf inode.children.(inode.ccount - 1)

  let min_binding t =
    let leaf = leftmost_leaf t.root in
    if leaf.lcount = 0 then None else Some (leaf.lkeys.(0), leaf.lvals.(0))

  let max_binding t =
    let leaf = rightmost_leaf t.root in
    if leaf.lcount = 0 then None
    else Some (leaf.lkeys.(leaf.lcount - 1), leaf.lvals.(leaf.lcount - 1))

  let iter t f =
    let rec go leaf =
      for i = 0 to leaf.lcount - 1 do
        f leaf.lkeys.(i) leaf.lvals.(i)
      done;
      match leaf.next with None -> () | Some next -> go next
    in
    go (leftmost_leaf t.root)

  let iter_from t lo f =
    let leaf = find_leaf t.root lo in
    let continue_ = ref true in
    let rec go leaf start =
      let i = ref start in
      while !continue_ && !i < leaf.lcount do
        if not (f leaf.lkeys.(!i) leaf.lvals.(!i)) then continue_ := false;
        incr i
      done;
      if !continue_ then
        match leaf.next with None -> () | Some next -> go next 0
    in
    go leaf (leaf_lower_bound leaf lo)

  let fold t ~init ~f =
    let acc = ref init in
    iter t (fun k v -> acc := f !acc k v);
    !acc

  let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

  let rec height_node = function
    | Leaf _ -> 1
    | Internal inode -> 1 + height_node inode.children.(0)

  let height t = height_node t.root

  let node_counts t =
    let internal = ref 0 and leaves = ref 0 in
    let rec go = function
      | Leaf _ -> incr leaves
      | Internal inode ->
        incr internal;
        for i = 0 to inode.ccount - 1 do
          go inode.children.(i)
        done
    in
    go t.root;
    (!internal, !leaves)

  (* --- bulk construction ------------------------------------------ *)

  let validate_sorted ~who pairs =
    for i = 1 to Array.length pairs - 1 do
      if K.compare (fst pairs.(i - 1)) (fst pairs.(i)) >= 0 then
        invalid_arg (who ^ ": keys not strictly increasing")
    done

  (* Splits [n] items into ceil(n/branching) groups of near-equal size.
     For two or more groups every group holds at least floor(n/groups)
     >= branching/2 items (and at least (branching+1)/2 when grouping
     children), so bottom-up loading never produces an underflowing
     node; a single group may be arbitrarily small — it becomes the
     root, which is exempt. *)
  let group_spans n b =
    let groups = (n + b - 1) / b in
    let base = n / groups and extra = n mod groups in
    (groups, fun i -> ((i * base) + min i extra, base + if i < extra then 1 else 0))

  (* Replaces the contents of [t] with [pairs] (strictly increasing),
     building leaves then each internal level in one left-to-right
     pass: O(n) time, no rebalancing. *)
  let bulk_build t pairs =
    let n = Array.length pairs in
    if n = 0 then begin
      t.root <- Leaf (empty_leaf ());
      t.size <- 0
    end
    else begin
      let b = t.branching in
      let nleaves, leaf_span = group_spans n b in
      let leaves =
        Array.init nleaves (fun i ->
            let start, cnt = leaf_span i in
            let cap = b + 1 in
            let k0, v0 = pairs.(start) in
            let lk = Array.make cap k0 and lv = Array.make cap v0 in
            for j = 0 to cnt - 1 do
              let k, v = pairs.(start + j) in
              lk.(j) <- k;
              lv.(j) <- v
            done;
            { lkeys = lk; lvals = lv; lcount = cnt; next = None })
      in
      for i = 0 to nleaves - 2 do
        leaves.(i).next <- Some leaves.(i + 1)
      done;
      (* [mins.(i)] is the smallest key under [nodes.(i)]; the minimum
         of a group's non-first children become the separators. *)
      let rec up nodes mins =
        let m = Array.length nodes in
        if m = 1 then nodes.(0)
        else begin
          let groups, span = group_spans m b in
          let parents =
            Array.init groups (fun i ->
                let start, cnt = span i in
                let kcap = b + 1 and ccap = b + 2 in
                let ik = Array.make kcap mins.(start) in
                let ic = Array.make ccap nodes.(start) in
                for j = 0 to cnt - 1 do
                  ic.(j) <- nodes.(start + j);
                  if j > 0 then ik.(j - 1) <- mins.(start + j)
                done;
                Internal { ikeys = ik; children = ic; ccount = cnt })
          in
          let pmins = Array.init groups (fun i -> mins.(fst (span i))) in
          up parents pmins
        end
      in
      let mins = Array.map (fun l -> l.lkeys.(0)) leaves in
      t.root <- up (Array.map (fun l -> Leaf l) leaves) mins;
      t.size <- n
    end

  let of_sorted ?branching pairs =
    let t = create ?branching () in
    validate_sorted ~who:"Bptree.of_sorted" pairs;
    bulk_build t pairs;
    t

  let load_sorted t pairs =
    if not (is_empty t) then invalid_arg "Bptree.load_sorted: tree not empty";
    validate_sorted ~who:"Bptree.load_sorted" pairs;
    bulk_build t pairs

  let insert_sorted_batch t batch =
    validate_sorted ~who:"Bptree.insert_sorted_batch" batch;
    let m = Array.length batch in
    if m = 0 then ()
    else if is_empty t then bulk_build t batch
    else if m * 4 < t.size then
      (* Small batch into a big tree: the drain-merge-rebuild below
         costs O(size) no matter how small the batch is, so a stream
         of little batches would degrade to O(size) per batch.  Below
         a quarter of the tree, per-key descent (m log size) is the
         cheaper side of the crossover and leaves the tree incremental.
         Semantics are identical either way (replace on duplicates). *)
      Array.iter (fun (k, v) -> insert t k v) batch
    else begin
      let n = t.size in
      let existing = Array.make n batch.(0) in
      let i = ref 0 in
      iter t (fun k v ->
          existing.(!i) <- (k, v);
          incr i);
      let merged = Array.make (n + m) batch.(0) in
      let a = ref 0 and bi = ref 0 and o = ref 0 in
      while !a < n && !bi < m do
        let c = K.compare (fst existing.(!a)) (fst batch.(!bi)) in
        if c < 0 then begin
          merged.(!o) <- existing.(!a);
          incr a;
          incr o
        end
        else if c > 0 then begin
          merged.(!o) <- batch.(!bi);
          incr bi;
          incr o
        end
        else begin
          (* Key present in both: the batch value wins, matching the
             replace semantics of one-at-a-time [insert]. *)
          merged.(!o) <- batch.(!bi);
          incr a;
          incr bi;
          incr o
        end
      done;
      while !a < n do
        merged.(!o) <- existing.(!a);
        incr a;
        incr o
      done;
      while !bi < m do
        merged.(!o) <- batch.(!bi);
        incr bi;
        incr o
      done;
      let merged = if !o = n + m then merged else Array.sub merged 0 !o in
      bulk_build t merged
    end

  (* --- invariants -------------------------------------------------- *)

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    let depth = height t in
    let count = ref 0 in
    (* Checks that keys in the subtree fall in [lo, hi) and that leaf
       depth is uniform. *)
    let rec go node level lo hi =
      let in_bounds k =
        (match lo with None -> true | Some l -> K.compare l k <= 0)
        && match hi with None -> true | Some h -> K.compare k h < 0
      in
      match node with
      | Leaf leaf ->
        if level <> depth then fail "leaf at depth %d, expected %d" level depth;
        if node != t.root && leaf.lcount < min_leaf_keys t then
          fail "leaf underflow: %d keys" leaf.lcount;
        if leaf.lcount > t.branching then fail "leaf overflow: %d keys" leaf.lcount;
        for i = 0 to leaf.lcount - 1 do
          if not (in_bounds leaf.lkeys.(i)) then fail "leaf key out of bounds";
          if i > 0 && K.compare leaf.lkeys.(i - 1) leaf.lkeys.(i) >= 0 then
            fail "leaf keys not strictly increasing"
        done;
        count := !count + leaf.lcount
      | Internal inode ->
        if node != t.root && internal_underflows t inode then
          fail "internal underflow: %d children" inode.ccount;
        if inode.ccount > t.branching then
          fail "internal overflow: %d children" inode.ccount;
        if inode.ccount < 2 then fail "internal with %d children" inode.ccount;
        for i = 0 to inode.ccount - 2 do
          if not (in_bounds inode.ikeys.(i)) then fail "separator out of bounds";
          if i > 0 && K.compare inode.ikeys.(i - 1) inode.ikeys.(i) >= 0 then
            fail "separators not strictly increasing"
        done;
        for i = 0 to inode.ccount - 1 do
          let clo = if i = 0 then lo else Some inode.ikeys.(i - 1) in
          let chi = if i = inode.ccount - 1 then hi else Some inode.ikeys.(i) in
          go inode.children.(i) (level + 1) clo chi
        done
    in
    go t.root 1 None None;
    if !count <> t.size then fail "size mismatch: counted %d, recorded %d" !count t.size;
    (* The leaf chain must visit every key in order. *)
    let chained = ref 0 in
    iter t (fun _ _ -> incr chained);
    if !chained <> t.size then fail "leaf chain visits %d of %d keys" !chained t.size
end
