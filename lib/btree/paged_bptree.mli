(** Page-backed B+-tree over a copy-on-write
    {!Lxu_storage_core.Page_store} — the big-data twin of {!Bptree}.

    Keys are fixed-width int tuples ([kw] words, lexicographic order);
    values fixed [vw]-word tuples, stored inline.  All node bytes live
    on pages, so resident RAM is bounded by the store's buffer pool —
    the tree itself can exceed memory.

    Deletion is lazy (no rebalancing; empty nodes unlink, the root
    collapses), mirroring {!Bptree}; bulk loads pack leaves full.
    Insert has replace semantics on duplicate keys.

    Mutations follow the store's COW protocol: changed nodes relocate
    to fresh pages and the root is republished into the tree's named
    root slot, so a {!Page_store.checkpoint} captures a consistent
    tree and a crash rolls back to the previous one.

    Single writer; reads may run concurrently with each other (never
    with the writer — the seglog's existing discipline). *)

type t

val create : Lxu_storage_core.Page_store.t -> slot:string -> kw:int -> vw:int -> t
(** A fresh empty tree publishing its root into slot [slot] (≤ 16
    bytes).  @raise Invalid_argument if a node cannot hold at least
    2 entries / 3 children at this page size. *)

val attach : Lxu_storage_core.Page_store.t -> slot:string -> kw:int -> vw:int -> t
(** Reopens the tree whose root the store's durable meta recorded
    under [slot]; empty when the slot is absent.  The caller is
    responsible for only attaching to a store whose checkpoint LSN
    matches the rest of the state being loaded. *)

val length : t -> int
val key_words : t -> int
val value_words : t -> int
val store : t -> Lxu_storage_core.Page_store.t

val insert : t -> int array -> int array -> unit
(** [insert t key value] — replaces on duplicate key.  The arrays are
    copied, not retained. *)

val remove : t -> int array -> bool
(** Whether the key was present. *)

val find : t -> int array -> value:int array -> bool
(** On a hit, fills [value] (length [vw]) with the stored words. *)

val mem : t -> int array -> bool

val iter : t -> (int array -> int array -> bool) -> unit
(** In-order scan.  The callback receives scratch key/value arrays
    valid only for that call; return [false] to stop. *)

val iter_from : t -> int array -> (int array -> int array -> bool) -> unit
(** In-order from the first key [>= lo]. *)

val load_sorted : t -> n:int -> get:(int -> int array -> int array -> unit) -> unit
(** Replaces the contents with [n] entries streamed through [get i
    kbuf vbuf] (fill the buffers for index [i]; keys strictly
    increasing), packing leaves full bottom-up in O(height) memory.
    Old pages are freed. *)

val insert_sorted_batch : t -> n:int -> get:(int -> int array -> int array -> unit) -> unit
(** Batch insert with replace semantics: per-key inserts for small
    batches, streaming merge-rebuild (old ∪ batch, batch wins) once
    the batch rivals the tree size. *)

val clear : t -> unit
(** Frees every page; the tree becomes empty. *)

val height : t -> int

val approx_bytes : t -> int
(** Estimated on-page footprint (packed-tree shape), without touching
    any page. *)

val node_counts : t -> int * int
(** (leaves, branches). *)

val check_invariants : t -> unit
(** Sortedness, separator windows, occupancy bounds, uniform leaf
    depth, size agreement.  @raise Failure on violation. *)
