(** In-memory B{^+}-trees.

    Both halves of the paper's update log use B{^+}-trees: the SB-tree
    maps segment identifiers to ER-tree nodes (§3.2) and the element
    index maps [(tid, sid, start, end, level)] keys to element records
    (§3.4).  This module provides a single generic implementation with
    ordered iteration and range scans, which is what the structural
    join algorithms need to enumerate the elements of one segment and
    one tag.

    Trees are mutable.  Duplicate keys are not stored: inserting an
    existing key replaces its value. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (K : ORDERED) : sig
  type 'v t

  val create : ?branching:int -> unit -> 'v t
  (** [create ~branching ()] makes an empty tree.  [branching] is the
      maximum number of children of an internal node (and of keys in a
      leaf); it defaults to 32 and must be at least 4. *)

  val length : 'v t -> int
  (** Number of stored bindings, in O(1). *)

  val is_empty : 'v t -> bool

  val insert : 'v t -> K.t -> 'v -> unit
  (** [insert t k v] binds [k] to [v], replacing any previous binding. *)

  val of_sorted : ?branching:int -> (K.t * 'v) array -> 'v t
  (** [of_sorted pairs] builds a tree bottom-up from pairs whose keys
      are strictly increasing, in O(n) — no per-key descent, no
      rebalancing.  Leaves and internal nodes are filled to near-equal
      occupancy, so the result satisfies {!check_invariants}.
      @raise Invalid_argument if the keys are not strictly increasing
      (duplicates included) or [branching < 4]. *)

  val load_sorted : 'v t -> (K.t * 'v) array -> unit
  (** [load_sorted t pairs] bulk-loads an {e empty} tree in place,
      keeping its branching factor; same contract as {!of_sorted}.
      @raise Invalid_argument if [t] is non-empty or the keys are not
      strictly increasing. *)

  val insert_sorted_batch : 'v t -> (K.t * 'v) array -> unit
  (** [insert_sorted_batch t batch] merges a batch of strictly
      increasing keys into [t].  When the batch is large relative to
      the tree (or the tree is empty) the existing bindings are
      drained in order, merged with the batch, and the tree is rebuilt
      bottom-up — O(n + m); small batches descend per key instead —
      O(m log n) — so a stream of little batches never degrades to a
      rebuild each.  Either way, a batch key already present replaces
      its value, as {!insert} would.
      @raise Invalid_argument if the batch keys are not strictly
      increasing (duplicate keys {e within} the batch are rejected). *)

  val find : 'v t -> K.t -> 'v option
  val mem : 'v t -> K.t -> bool

  val remove : 'v t -> K.t -> bool
  (** [remove t k] deletes the binding for [k]; [false] when absent. *)

  val min_binding : 'v t -> (K.t * 'v) option
  val max_binding : 'v t -> (K.t * 'v) option

  val iter : 'v t -> (K.t -> 'v -> unit) -> unit
  (** In-order traversal of all bindings. *)

  val iter_from : 'v t -> K.t -> (K.t -> 'v -> bool) -> unit
  (** [iter_from t lo f] applies [f] in key order to every binding with
      key [>= lo], stopping as soon as [f] returns [false].  This is the
      primitive behind prefix and range scans. *)

  val fold : 'v t -> init:'a -> f:('a -> K.t -> 'v -> 'a) -> 'a

  val to_list : 'v t -> (K.t * 'v) list

  val height : 'v t -> int
  (** Root-to-leaf depth; an empty tree has height 1 (a single leaf). *)

  val node_counts : 'v t -> int * int
  (** [(internal, leaf)] node counts, for space accounting. *)

  val check_invariants : 'v t -> unit
  (** Validates ordering, fanout bounds and uniform leaf depth.
      @raise Failure describing the first violated invariant. *)
end
