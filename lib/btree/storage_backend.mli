(** Storage backend selector for index structures: the in-memory fast
    path, or page-backed nodes in a copy-on-write {!Lxu_storage_core.Page_store}
    whose RAM footprint is bounded by the buffer pool.

    [attach = true] reopens the structure's durable tree from its
    named root slot instead of starting empty — callers must first
    check the store's checkpoint LSN against the snapshot they are
    loading, and rebuild when they disagree. *)

type spec =
  | Mem
  | Paged of { store : Lxu_storage_core.Page_store.t; attach : bool }

val is_paged : spec -> bool
