(* Page-backed B+-tree over a copy-on-write {!Page_store}.

   Keys are fixed [kw]-word int tuples (lexicographic order), values
   fixed [vw]-word tuples, both stored inline as int64 LE words, so a
   node is pure int words and a page read decodes nothing.

   Node payload layout (words):
     w0            tag: 0 = leaf, 1 = branch
     w1            count (entries for a leaf, children for a branch)
     leaf:    w2.. count × (kw+vw) words, key then value, sorted
     branch:  w2.. count child pids, then (count-1) separators × kw

   Separator s_i is the smallest key of child i+1's subtree: a lookup
   for k descends into child (number of separators ≤ k).

   There is deliberately no leaf chain: under copy-on-write a page
   relocates whenever touched, which would invalidate the left
   neighbour's next pointer.  Range scans instead walk an explicit
   (pid, child-index) stack, re-pinning interior pages as they pop —
   cheap, because interior pages are hot in the buffer pool.

   Deletion is lazy, as the seglog's update discipline favours:
   no rebalancing or merging, only empty nodes are removed (and the
   root collapses through single-child branches).  Bulk operations
   rebuild perfectly packed trees, which re-tightens occupancy the
   same way segment packing re-tightens the skeleton.

   Mutation follows rewrite-not-overwrite: a changed node lands on a
   fresh pid via {!Page_store.write_fresh} (or in place when the pid
   is already fresh this epoch), and the old pid is freed — the
   page-level COW protocol does the rest. *)

module Page_store = Lxu_storage_core.Page_store

type t = {
  ps : Page_store.t;
  slot : string;
  kw : int;
  vw : int;
  stride : int;  (* kw + vw *)
  leaf_cap : int;
  branch_cap : int;
  mutable root : int;  (* pid, -1 when empty *)
  mutable size : int;
}

let get_w b i = Int64.to_int (Bytes.get_int64_le b (i * 8))
let set_w b i v = Bytes.set_int64_le b (i * 8) (Int64.of_int v)

let leaf_tag = 0
let branch_tag = 1

let publish t = Page_store.set_root t.ps t.slot ~pid:t.root ~size:t.size

let mk ps ~slot ~kw ~vw ~root ~size =
  if kw < 1 then invalid_arg "Paged_bptree: kw must be >= 1";
  if vw < 0 then invalid_arg "Paged_bptree: vw must be >= 0";
  let ints = Page_store.payload_bytes ps / 8 in
  let leaf_cap = (ints - 2) / (kw + vw) in
  let branch_cap = (ints - 2 + kw) / (1 + kw) in
  if leaf_cap < 2 || branch_cap < 3 then
    invalid_arg
      (Printf.sprintf "Paged_bptree: page too small for kw=%d vw=%d (leaf %d, branch %d)"
         kw vw leaf_cap branch_cap);
  { ps; slot; kw; vw; stride = kw + vw; leaf_cap; branch_cap; root; size }

let create ps ~slot ~kw ~vw =
  let t = mk ps ~slot ~kw ~vw ~root:(-1) ~size:0 in
  publish t;
  t

let attach ps ~slot ~kw ~vw =
  match Page_store.root ps slot with
  | Some (pid, size) when pid >= 0 -> mk ps ~slot ~kw ~vw ~root:pid ~size
  | _ -> create ps ~slot ~kw ~vw

let length t = t.size
let key_words t = t.kw
let value_words t = t.vw
let store t = t.ps

(* compare the kw-word key at word offset [off] of [b] with [k] *)
let cmp_key_at t b off (k : int array) =
  let rec go i =
    if i = t.kw then 0
    else
      let v = get_w b (off + i) in
      if v < k.(i) then -1 else if v > k.(i) then 1 else go (i + 1)
  in
  go 0

(* first entry index whose key is >= k, in [0, count] *)
let leaf_lower_bound t b count k =
  let lo = ref 0 and hi = ref count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_key_at t b (2 + (mid * t.stride)) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* number of separators <= k, in [0, count-1]: the child to descend into *)
let child_index t b count k =
  let lo = ref 0 and hi = ref (count - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_key_at t b (2 + count + (mid * t.kw)) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- node materialization (mutating paths only) --- *)

let read_words b off dst n = for i = 0 to n - 1 do dst.(i) <- get_w b (off + i) done
let write_words b off src n = for i = 0 to n - 1 do set_w b (off + i) src.(i) done

let write_leaf t b ~count ents =
  set_w b 0 leaf_tag;
  set_w b 1 count;
  write_words b 2 ents (count * t.stride)

let write_branch t b ~count children seps =
  set_w b 0 branch_tag;
  set_w b 1 count;
  for i = 0 to count - 1 do
    set_w b (2 + i) children.(i)
  done;
  write_words b (2 + count) seps ((count - 1) * t.kw)

(* Replace node [pid] with new content: in place when fresh this
   epoch, else on a fresh pid (old freed).  Returns the pid the
   content lives on. *)
let rewrite t pid writer =
  if Page_store.is_fresh t.ps pid then begin
    Page_store.with_page_mut t.ps pid writer;
    pid
  end
  else begin
    let np = Page_store.alloc t.ps in
    Page_store.write_fresh t.ps np writer;
    Page_store.free t.ps pid;
    np
  end

let write_new t writer =
  let np = Page_store.alloc t.ps in
  Page_store.write_fresh t.ps np writer;
  np

(* --- find --- *)

let rec find_from t pid key ~value =
  Page_store.with_page t.ps pid (fun b ->
      let count = get_w b 1 in
      if get_w b 0 = leaf_tag then begin
        let pos = leaf_lower_bound t b count key in
        if pos < count && cmp_key_at t b (2 + (pos * t.stride)) key = 0 then begin
          (* [mem] probes with an empty buffer: existence only. *)
          if Array.length value >= t.vw then
            read_words b (2 + (pos * t.stride) + t.kw) value t.vw;
          true
        end
        else false
      end
      else
        let ci = child_index t b count key in
        let child = get_w b (2 + ci) in
        find_from t child key ~value)

let no_value : int array = [||]

let find t key ~value = if t.root < 0 then false else find_from t t.root key ~value
let mem t key = if t.root < 0 then false else find_from t t.root key ~value:no_value

(* --- insert --- *)

type split = { sep : int array; s_right : int }

(* (pid', key-was-new, split?) *)
let rec ins t pid key value =
  let tag, count =
    Page_store.with_page t.ps pid (fun b -> (get_w b 0, get_w b 1))
  in
  if tag = leaf_tag then begin
    let ents = Array.make ((count + 1) * t.stride) 0 in
    let pos =
      Page_store.with_page t.ps pid (fun b ->
          read_words b 2 ents (count * t.stride);
          leaf_lower_bound t b count key)
    in
    let off = pos * t.stride in
    if pos < count && (let rec eq i = i = t.kw || (ents.(off + i) = key.(i) && eq (i + 1)) in eq 0)
    then
      if t.vw = 0 then (pid, false, None)
      else begin
        Array.blit value 0 ents (off + t.kw) t.vw;
        (rewrite t pid (fun b -> write_leaf t b ~count ents), false, None)
      end
    else begin
      (* shift tail right one stride, splice the new entry in *)
      Array.blit ents off ents (off + t.stride) ((count - pos) * t.stride);
      Array.blit key 0 ents off t.kw;
      Array.blit value 0 ents (off + t.kw) t.vw;
      let total = count + 1 in
      if total <= t.leaf_cap then
        (rewrite t pid (fun b -> write_leaf t b ~count:total ents), true, None)
      else begin
        let left_n = (total + 1) / 2 in
        let right_n = total - left_n in
        let right_ents = Array.sub ents (left_n * t.stride) (right_n * t.stride) in
        let sep = Array.sub right_ents 0 t.kw in
        let pid_l = rewrite t pid (fun b -> write_leaf t b ~count:left_n ents) in
        let pid_r = write_new t (fun b -> write_leaf t b ~count:right_n right_ents) in
        (pid_l, true, Some { sep; s_right = pid_r })
      end
    end
  end
  else begin
    let children = Array.make (count + 1) 0 in
    let seps = Array.make (count * t.kw) 0 in
    let ci =
      Page_store.with_page t.ps pid (fun b ->
          for i = 0 to count - 1 do
            children.(i) <- get_w b (2 + i)
          done;
          read_words b (2 + count) seps ((count - 1) * t.kw);
          child_index t b count key)
    in
    let cp, added, sp = ins t children.(ci) key value in
    match sp with
    | None ->
      if cp = children.(ci) then (pid, added, None)
      else begin
        children.(ci) <- cp;
        (rewrite t pid (fun b -> write_branch t b ~count children seps), added, None)
      end
    | Some { sep; s_right } ->
      children.(ci) <- cp;
      (* splice sep at index ci, right child at ci+1 *)
      Array.blit children (ci + 1) children (ci + 2) (count - ci - 1);
      children.(ci + 1) <- s_right;
      Array.blit seps (ci * t.kw) seps ((ci + 1) * t.kw) ((count - 1 - ci) * t.kw);
      Array.blit sep 0 seps (ci * t.kw) t.kw;
      let total = count + 1 in
      if total <= t.branch_cap then
        (rewrite t pid (fun b -> write_branch t b ~count:total children seps), added, None)
      else begin
        let left_n = (total + 1) / 2 in
        let right_n = total - left_n in
        let promoted = Array.sub seps ((left_n - 1) * t.kw) t.kw in
        let right_children = Array.sub children left_n right_n in
        let right_seps = Array.sub seps (left_n * t.kw) ((right_n - 1) * t.kw) in
        let pid_l = rewrite t pid (fun b -> write_branch t b ~count:left_n children seps) in
        let pid_r = write_new t (fun b -> write_branch t b ~count:right_n right_children right_seps) in
        (pid_l, added, Some { sep = promoted; s_right = pid_r })
      end
  end

let insert t key value =
  if Array.length key <> t.kw || Array.length value <> t.vw then
    invalid_arg "Paged_bptree.insert: key/value width mismatch";
  (if t.root < 0 then begin
     let ents = Array.make t.stride 0 in
     Array.blit key 0 ents 0 t.kw;
     Array.blit value 0 ents t.kw t.vw;
     t.root <- write_new t (fun b -> write_leaf t b ~count:1 ents);
     t.size <- 1
   end
   else
     let r, added, sp = ins t t.root key value in
     let r =
       match sp with
       | None -> r
       | Some { sep; s_right } ->
         write_new t (fun b -> write_branch t b ~count:2 [| r; s_right |] sep)
     in
     t.root <- r;
     if added then t.size <- t.size + 1);
  publish t

(* --- remove (lazy: no rebalancing, empty nodes unlink) --- *)

(* (surviving pid option, key-was-present) *)
let rec del t pid key =
  let tag, count =
    Page_store.with_page t.ps pid (fun b -> (get_w b 0, get_w b 1))
  in
  if tag = leaf_tag then begin
    let ents = Array.make (count * t.stride) 0 in
    let pos =
      Page_store.with_page t.ps pid (fun b ->
          read_words b 2 ents (count * t.stride);
          leaf_lower_bound t b count key)
    in
    let off = pos * t.stride in
    if pos >= count || not (let rec eq i = i = t.kw || (ents.(off + i) = key.(i) && eq (i + 1)) in eq 0)
    then (Some pid, false)
    else if count = 1 then begin
      Page_store.free t.ps pid;
      (None, true)
    end
    else begin
      Array.blit ents (off + t.stride) ents off ((count - 1 - pos) * t.stride);
      (Some (rewrite t pid (fun b -> write_leaf t b ~count:(count - 1) ents)), true)
    end
  end
  else begin
    let children = Array.make count 0 in
    let seps = Array.make ((count - 1) * t.kw) 0 in
    let ci =
      Page_store.with_page t.ps pid (fun b ->
          for i = 0 to count - 1 do
            children.(i) <- get_w b (2 + i)
          done;
          read_words b (2 + count) seps ((count - 1) * t.kw);
          child_index t b count key)
    in
    match del t children.(ci) key with
    | Some cp, removed ->
      if cp = children.(ci) then (Some pid, removed)
      else begin
        children.(ci) <- cp;
        (Some (rewrite t pid (fun b -> write_branch t b ~count children seps)), removed)
      end
    | None, removed ->
      if count = 1 then begin
        Page_store.free t.ps pid;
        (None, removed)
      end
      else begin
        (* drop child ci and the separator adjoining it *)
        let nc = Array.make (count - 1) 0 in
        Array.blit children 0 nc 0 ci;
        Array.blit children (ci + 1) nc ci (count - 1 - ci);
        let si = if ci = 0 then 0 else ci - 1 in
        let ns = Array.make ((count - 2) * t.kw) 0 in
        Array.blit seps 0 ns 0 (si * t.kw);
        Array.blit seps ((si + 1) * t.kw) ns (si * t.kw) ((count - 2 - si) * t.kw);
        (Some (rewrite t pid (fun b -> write_branch t b ~count:(count - 1) nc ns)), removed)
      end
  end

let rec collapse_root t =
  if t.root >= 0 then begin
    let info =
      Page_store.with_page t.ps t.root (fun b ->
          if get_w b 0 = branch_tag && get_w b 1 = 1 then Some (get_w b 2) else None)
    in
    match info with
    | Some only_child ->
      Page_store.free t.ps t.root;
      t.root <- only_child;
      collapse_root t
    | None -> ()
  end

let remove t key =
  if Array.length key <> t.kw then invalid_arg "Paged_bptree.remove: key width mismatch";
  if t.root < 0 then false
  else begin
    let r, removed = del t t.root key in
    t.root <- (match r with None -> -1 | Some p -> p);
    collapse_root t;
    if removed then t.size <- t.size - 1;
    publish t;
    removed
  end

(* --- iteration: explicit stack, no leaf chain --- *)

exception Stop

let iter_gen t lo f =
  if t.root >= 0 then begin
    let kbuf = Array.make t.kw 0 in
    let vbuf = Array.make t.vw 0 in
    (* stack of (branch pid, next child index to visit) *)
    let stack = ref [] in
    let emit_leaf b count start =
      for i = start to count - 1 do
        let off = 2 + (i * t.stride) in
        read_words b off kbuf t.kw;
        read_words b (off + t.kw) vbuf t.vw;
        if not (f kbuf vbuf) then raise Stop
      done
    in
    (* [bounded] is true only on the initial descent toward [lo] *)
    let rec descend pid ~bounded =
      Page_store.with_page t.ps pid (fun b ->
          let count = get_w b 1 in
          if get_w b 0 = leaf_tag then
            let start =
              match lo with
              | Some k when bounded -> leaf_lower_bound t b count k
              | _ -> 0
            in
            emit_leaf b count start
          else begin
            let ci =
              match lo with Some k when bounded -> child_index t b count k | _ -> 0
            in
            stack := (pid, ci + 1) :: !stack;
            descend (get_w b (2 + ci)) ~bounded
          end)
    in
    let rec drain () =
      match !stack with
      | [] -> ()
      | (pid, ci) :: rest ->
        stack := rest;
        let next =
          Page_store.with_page t.ps pid (fun b ->
              let count = get_w b 1 in
              if ci < count then Some (get_w b (2 + ci)) else None)
        in
        (match next with
        | Some child ->
          stack := (pid, ci + 1) :: !stack;
          descend child ~bounded:false
        | None -> ());
        drain ()
    in
    try
      descend t.root ~bounded:(lo <> None);
      drain ()
    with Stop -> ()
  end

let iter t f = iter_gen t None f
let iter_from t lo f = iter_gen t (Some lo) f

(* --- bulk build: streaming bottom-up packer ---

   Leaves fill completely; each flushed node pushes (first key, pid)
   into its parent level's pending slots, cascading when a level
   fills.  Memory is O(height × branch_cap × kw) — beyond-RAM safe. *)

type level = { l_keys : int array; l_pids : int array; mutable l_n : int }

type builder = {
  b_t : t;
  b_leaf : int array;
  mutable b_leaf_n : int;
  mutable b_levels : level list;  (* level 0 = parents of leaves; grows *)
  mutable b_total : int;
  b_prev : int array;  (* last key pushed, for the sortedness check *)
}

let builder t =
  { b_t = t; b_leaf = Array.make (t.leaf_cap * t.stride) 0; b_leaf_n = 0; b_levels = [];
    b_total = 0; b_prev = Array.make t.kw 0 }

let rec level_nth b i =
  let rec nth levels i =
    match levels with
    | l :: rest -> if i = 0 then Some l else nth rest (i - 1)
    | [] -> None
  in
  match nth b.b_levels i with
  | Some l -> l
  | None ->
    let t = b.b_t in
    let l =
      { l_keys = Array.make (t.branch_cap * t.kw) 0; l_pids = Array.make t.branch_cap 0;
        l_n = 0 }
    in
    b.b_levels <- b.b_levels @ [ l ];
    level_nth b i

let rec push_child b lvl key koff pid =
  let t = b.b_t in
  let l = level_nth b lvl in
  Array.blit key koff l.l_keys (l.l_n * t.kw) t.kw;
  l.l_pids.(l.l_n) <- pid;
  l.l_n <- l.l_n + 1;
  if l.l_n = t.branch_cap then flush_branch b lvl

and flush_branch b lvl =
  let t = b.b_t in
  let l = level_nth b lvl in
  let n = l.l_n in
  if n > 0 then begin
    let children = Array.sub l.l_pids 0 n in
    let seps = Array.sub l.l_keys t.kw ((n - 1) * t.kw) in
    let pid = write_new t (fun bts -> write_branch t bts ~count:n children seps) in
    l.l_n <- 0;
    push_child b (lvl + 1) l.l_keys 0 pid
  end

let flush_leaf b =
  let t = b.b_t in
  if b.b_leaf_n > 0 then begin
    let n = b.b_leaf_n in
    let pid = write_new t (fun bts -> write_leaf t bts ~count:n b.b_leaf) in
    b.b_leaf_n <- 0;
    push_child b 0 b.b_leaf 0 pid
  end

let push_entry b key value =
  let t = b.b_t in
  (if b.b_total > 0 then begin
     let rec cmp i = if i = t.kw then 0
       else if b.b_prev.(i) < key.(i) then -1
       else if b.b_prev.(i) > key.(i) then 1
       else cmp (i + 1)
     in
     if cmp 0 >= 0 then invalid_arg "Paged_bptree: bulk keys must be strictly increasing"
   end);
  Array.blit key 0 b.b_prev 0 t.kw;
  let off = b.b_leaf_n * t.stride in
  Array.blit key 0 b.b_leaf off t.kw;
  Array.blit value 0 b.b_leaf (off + t.kw) t.vw;
  b.b_leaf_n <- b.b_leaf_n + 1;
  b.b_total <- b.b_total + 1;
  if b.b_leaf_n = t.leaf_cap then flush_leaf b

let finish b =
  flush_leaf b;
  if b.b_total = 0 then -1
  else begin
    (* cascade partial levels upward; the topmost single pending child
       is the root *)
    let root = ref (-1) in
    let rec go lvl =
      let l = level_nth b lvl in
      let is_top =
        (* no pending children above this level *)
        let rec above levels i =
          match levels with
          | [] -> true
          | x :: rest -> if i <= 0 then (x.l_n = 0 && above rest 0) else above rest (i - 1)
        in
        above b.b_levels (lvl + 1)
      in
      if l.l_n = 1 && is_top then root := l.l_pids.(0)
      else begin
        flush_branch b lvl;
        go (lvl + 1)
      end
    in
    go 0;
    !root
  end

(* free every page of the subtree rooted at [pid] *)
let rec free_subtree t pid =
  let children =
    Page_store.with_page t.ps pid (fun b ->
        if get_w b 0 = branch_tag then begin
          let count = get_w b 1 in
          Array.init count (fun i -> get_w b (2 + i))
        end
        else [||])
  in
  Array.iter (fun c -> free_subtree t c) children;
  Page_store.free t.ps pid

let clear t =
  if t.root >= 0 then free_subtree t t.root;
  t.root <- -1;
  t.size <- 0;
  publish t

let load_sorted t ~n ~get =
  let old_root = t.root in
  let b = builder t in
  let kbuf = Array.make t.kw 0 and vbuf = Array.make t.vw 0 in
  for i = 0 to n - 1 do
    get i kbuf vbuf;
    push_entry b kbuf vbuf
  done;
  let new_root = finish b in
  if old_root >= 0 then free_subtree t old_root;
  t.root <- new_root;
  t.size <- n;
  publish t

let insert_sorted_batch t ~n ~get =
  if n > 0 then begin
    if t.root < 0 then load_sorted t ~n ~get
    else if n * 4 < t.size then begin
      let kbuf = Array.make t.kw 0 and vbuf = Array.make t.vw 0 in
      for i = 0 to n - 1 do
        get i kbuf vbuf;
        insert t kbuf vbuf
      done
    end
    else begin
      (* merge-rebuild: stream old ∪ batch (batch wins ties) into a
         packed tree, then free the old one *)
      let old_root = t.root and old_size = t.size in
      ignore old_size;
      let b = builder t in
      let bk = Array.make t.kw 0 and bv = Array.make t.vw 0 in
      let bi = ref 0 in
      let have_batch = ref false in
      let fetch () =
        if !bi < n then begin
          get !bi bk bv;
          incr bi;
          have_batch := true
        end
        else have_batch := false
      in
      fetch ();
      let cmp_batch k =
        let rec go i =
          if i = t.kw then 0
          else if bk.(i) < k.(i) then -1
          else if bk.(i) > k.(i) then 1
          else go (i + 1)
        in
        go 0
      in
      iter_gen t None (fun k v ->
          let rec drain () =
            if !have_batch then begin
              let c = cmp_batch k in
              if c < 0 then begin
                push_entry b bk bv;
                fetch ();
                drain ()
              end
              else if c = 0 then begin
                (* batch replaces the old entry *)
                push_entry b bk bv;
                fetch ();
                false
              end
              else true
            end
            else true
          in
          if drain () then push_entry b k v;
          true);
      while !have_batch do
        push_entry b bk bv;
        fetch ()
      done;
      let new_root = finish b in
      let new_size = b.b_total in
      free_subtree t old_root;
      t.root <- new_root;
      t.size <- new_size;
      publish t
    end
  end

(* --- diagnostics --- *)

(* Footprint estimate without touching pages: assumes packed leaves
   (an upper tree shape bound under lazy deletion is the entry count
   itself, but packed is the right expectation after bulk loads). *)
let approx_bytes t =
  if t.size = 0 then 0
  else begin
    let leaves = ((t.size + t.leaf_cap - 1) / t.leaf_cap) in
    let branches = (leaves + t.branch_cap - 1) / t.branch_cap in
    (leaves + branches + 1) * Page_store.page_size t.ps
  end

let height t =
  if t.root < 0 then 0
  else begin
    let rec go pid acc =
      Page_store.with_page t.ps pid (fun b ->
          if get_w b 0 = leaf_tag then acc else go (get_w b 2) (acc + 1))
    in
    go t.root 1
  end

let node_counts t =
  if t.root < 0 then (0, 0)
  else begin
    let leaves = ref 0 and branches = ref 0 in
    let rec go pid =
      let children =
        Page_store.with_page t.ps pid (fun b ->
            if get_w b 0 = leaf_tag then begin
              incr leaves;
              [||]
            end
            else begin
              incr branches;
              Array.init (get_w b 1) (fun i -> get_w b (2 + i))
            end)
      in
      Array.iter go children
    in
    go t.root;
    (!leaves, !branches)
  end

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  if t.root < 0 then begin
    if t.size <> 0 then fail "Paged_bptree: empty tree with size %d" t.size
  end
  else begin
    let entries = ref 0 in
    let leaf_depth = ref (-1) in
    (* keys in a subtree must lie in [lo, hi) (None = unbounded) *)
    let cmp_arr a b_ =
      let rec go i =
        if i = t.kw then 0
        else if a.(i) < b_.(i) then -1
        else if a.(i) > b_.(i) then 1
        else go (i + 1)
      in
      go 0
    in
    let in_window k lo hi =
      (match lo with None -> true | Some l -> cmp_arr k l >= 0)
      && match hi with None -> true | Some h -> cmp_arr k h < 0
    in
    let rec go pid depth lo hi =
      Page_store.with_page t.ps pid (fun b ->
          let tag = get_w b 0 and count = get_w b 1 in
          if count < 1 then fail "Paged_bptree: empty node pid %d" pid;
          if tag = leaf_tag then begin
            if count > t.leaf_cap then fail "Paged_bptree: overfull leaf pid %d" pid;
            if !leaf_depth = -1 then leaf_depth := depth
            else if !leaf_depth <> depth then
              fail "Paged_bptree: leaf depth %d <> %d" depth !leaf_depth;
            entries := !entries + count;
            let prev = ref None in
            for i = 0 to count - 1 do
              let k = Array.init t.kw (fun j -> get_w b (2 + (i * t.stride) + j)) in
              if not (in_window k lo hi) then fail "Paged_bptree: leaf key out of window pid %d" pid;
              (match !prev with
              | Some p when cmp_arr p k >= 0 -> fail "Paged_bptree: unsorted leaf pid %d" pid
              | _ -> ());
              prev := Some k
            done
          end
          else begin
            if count > t.branch_cap then fail "Paged_bptree: overfull branch pid %d" pid;
            let seps =
              Array.init (count - 1) (fun i ->
                  Array.init t.kw (fun j -> get_w b (2 + count + (i * t.kw) + j)))
            in
            Array.iteri
              (fun i s ->
                if not (in_window s lo hi) then fail "Paged_bptree: separator out of window pid %d" pid;
                if i > 0 && cmp_arr seps.(i - 1) s >= 0 then
                  fail "Paged_bptree: unsorted separators pid %d" pid)
              seps;
            for i = 0 to count - 1 do
              let clo = if i = 0 then lo else Some seps.(i - 1) in
              let chi = if i = count - 1 then hi else Some seps.(i) in
              go (get_w b (2 + i)) (depth + 1) clo chi
            done
          end)
    in
    go t.root 0 None None;
    if !entries <> t.size then fail "Paged_bptree: size %d but %d entries" t.size !entries
  end
