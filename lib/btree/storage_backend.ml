(* Where an index structure keeps its nodes.  [Mem] is the existing
   in-memory fast path; [Paged] puts nodes on copy-on-write pages in a
   {!Lxu_storage_core.Page_store}, bounded in RAM by its buffer pool.
   [attach = true] means a durable tree for this structure already
   exists in the store (named root slot) and should be reopened rather
   than built empty — valid only when the store's checkpoint LSN
   matches the snapshot being loaded. *)

type spec =
  | Mem
  | Paged of { store : Lxu_storage_core.Page_store.t; attach : bool }

let is_paged = function Mem -> false | Paged _ -> true
