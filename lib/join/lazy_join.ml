open Lxu_util
open Lxu_seglog

type axis = Descendant | Child

(* One flat block of eight immediate fields per pair — no nested
   element records, so materializing N pairs allocates N+1 blocks
   rather than 3N+1 and the GC never chases intra-pair pointers. *)
type pair = {
  a_sid : int;
  a_start : int;
  a_stop : int;
  a_level : int;
  d_sid : int;
  d_start : int;
  d_stop : int;
  d_level : int;
}

type stats = {
  mutable a_segments : int;
  mutable d_segments : int;
  mutable segments_pushed : int;
  mutable segments_skipped : int;
  mutable in_segment_joins : int;
  mutable cross_pairs : int;
  mutable in_pairs : int;
  mutable elements_fetched : int;
  mutable segments_prefiltered : int;
}

let zero_stats () =
  {
    a_segments = 0;
    d_segments = 0;
    segments_pushed = 0;
    segments_skipped = 0;
    in_segment_joins = 0;
    cross_pairs = 0;
    in_pairs = 0;
    elements_fetched = 0;
    segments_prefiltered = 0;
  }

let add_stats into s =
  into.a_segments <- into.a_segments + s.a_segments;
  into.d_segments <- into.d_segments + s.d_segments;
  into.segments_pushed <- into.segments_pushed + s.segments_pushed;
  into.segments_skipped <- into.segments_skipped + s.segments_skipped;
  into.in_segment_joins <- into.in_segment_joins + s.in_segment_joins;
  into.cross_pairs <- into.cross_pairs + s.cross_pairs;
  into.in_pairs <- into.in_pairs + s.in_pairs;
  into.elements_fetched <- into.elements_fetched + s.elements_fetched;
  into.segments_prefiltered <- into.segments_prefiltered + s.segments_prefiltered

type frame = {
  node : Er_node.t;
  depth : int;  (* ER-tree depth: index of [node.sid] in any descendant's path *)
  mutable elems : Seg_cache.cols;
      (* candidate A-elements, by start; replaced (never mutated in
         place) so join units that captured an earlier version keep it
         — and so that cache-owned snapshots stay pristine *)
}

let contains_seg (a : Er_node.t) (d : Er_node.t) =
  a.Er_node.gp < d.Er_node.gp && a.Er_node.gp + a.Er_node.len > d.Er_node.gp + d.Er_node.len

let seg_depth (n : Er_node.t) =
  let rec up acc = function None -> acc | Some p -> up (acc + 1) p.Er_node.parent in
  up 0 n.Er_node.parent

(* Local position, within the frame's segment, of the child segment on
   the path to the segment whose tag-list [path] is given (P_T^S of
   §4.1).  Paths are root chains, so the frame's sid sits at index
   [frame.depth] of every descendant's path — an O(1) lookup the paper
   sketches as "computed after each push and stored". *)
let p_of_frame log fr (path : int array) =
  let i = fr.depth in
  if i + 1 >= Array.length path || path.(i) <> fr.node.Er_node.sid then raise Not_found
  else (Update_log.node_of_sid log path.(i + 1)).Er_node.lp

(* Order-preserving index filter that returns the input columns
   untouched when nothing is dropped — the common case on the push
   path.  Always copies when it does drop: snapshots may be shared
   with the cache and with captured join units. *)
let cols_filter keep (c : Seg_cache.cols) =
  let n = Seg_cache.cols_length c in
  let kept = ref 0 in
  let mask = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    if keep i then begin
      Bytes.unsafe_set mask i '\001';
      incr kept
    end
  done;
  if !kept = n then c
  else if !kept = 0 then Seg_cache.empty_cols
  else begin
    let starts = Array.make !kept 0
    and stops = Array.make !kept 0
    and levels = Array.make !kept 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.unsafe_get mask i = '\001' then begin
        starts.(!j) <- c.starts.(i);
        stops.(!j) <- c.stops.(i);
        levels.(!j) <- c.levels.(i);
        incr j
      end
    done;
    { Seg_cache.starts; stops; levels }
  end

(* Growable flat output buffer: 8 ints per pair
   [a_sid; a_start; a_stop; a_level; d_sid; d_start; d_stop; d_level].
   The kernels' inner loops write plain ints here — no pair or
   elem_ref records are allocated per element; the record form is
   built once at the API boundary. *)
(* Chunked flat output buffer: 8 ints per pair
   [a_sid; a_start; a_stop; a_level; d_sid; d_start; d_stop; d_level],
   written into fixed chunks that are never re-grown — a growable
   array would alloc+zero+copy its whole prefix on every doubling
   round, which dominates emission cost once the buffer outgrows the
   minor heap.  Chunk sizes escalate 256 → … → 65536 ints so small
   join units stay small and big ones amortize.  [full] holds
   completely-filled chunks in reverse push order (chunk sizes are
   multiples of 8 and pushes advance by 8, so rotation happens exactly
   at capacity). *)
type buf = {
  mutable full : int array list;
  mutable spare : int array list;
      (* chunks handed back by [buf_reset], smallest first — chunks
         larger than 256 words live on the major heap, so recycling
         them across runs is what makes repeated queries
         allocation-light *)
  mutable cur : int array;
  mutable cur_len : int;
  mutable total : int;  (* ints across [full] and [cur] *)
}

let buf_create () = { full = []; spare = []; cur = [||]; cur_len = 0; total = 0 }

(* Rewinds for reuse: every chunk the run filled becomes spare
   capacity for the next run.  [full] is reverse push order
   (largest-first), so the rebuilt spare list is smallest-first,
   matching the escalation order [buf_grow] re-consumes them in. *)
let buf_reset b =
  b.spare <- List.rev_append b.full (if Array.length b.cur > 0 then [ b.cur ] else b.spare);
  b.full <- [];
  b.cur <- [||];
  b.cur_len <- 0;
  b.total <- 0

let buf_grow b =
  if b.cur_len > 0 then b.full <- b.cur :: b.full;
  (match b.spare with
  | c :: rest ->
    b.cur <- c;
    b.spare <- rest
  | [] -> b.cur <- Array.make (max 256 (min 65536 (2 * Array.length b.cur))) 0);
  b.cur_len <- 0

let buf_push8 b x0 x1 x2 x3 x4 x5 x6 x7 =
  if b.cur_len + 8 > Array.length b.cur then buf_grow b;
  let d = b.cur and o = b.cur_len in
  Array.unsafe_set d o x0;
  Array.unsafe_set d (o + 1) x1;
  Array.unsafe_set d (o + 2) x2;
  Array.unsafe_set d (o + 3) x3;
  Array.unsafe_set d (o + 4) x4;
  Array.unsafe_set d (o + 5) x5;
  Array.unsafe_set d (o + 6) x6;
  Array.unsafe_set d (o + 7) x7;
  b.cur_len <- o + 8;
  b.total <- b.total + 8

(* Materializes the pair records for a sequence of buffers in order —
   the single conversion at the API boundary, shared by the sequential
   (one buffer) and pool (one buffer per join unit, unit order) paths. *)
type scratch = buf

let scratch = buf_create

let bufs_to_pairs bufs =
  let total = List.fold_left (fun acc b -> acc + b.total) 0 bufs in
  let n = total / 8 in
  if n = 0 then [||]
  else begin
    let out =
      Array.make n
        {
          a_sid = 0;
          a_start = 0;
          a_stop = 0;
          a_level = 0;
          d_sid = 0;
          d_start = 0;
          d_stop = 0;
          d_level = 0;
        }
    in
    let k = ref 0 in
    let emit data len =
      let o = ref 0 in
      while !o < len do
        let p = !o in
        Array.unsafe_set out !k
          {
            a_sid = Array.unsafe_get data p;
            a_start = Array.unsafe_get data (p + 1);
            a_stop = Array.unsafe_get data (p + 2);
            a_level = Array.unsafe_get data (p + 3);
            d_sid = Array.unsafe_get data (p + 4);
            d_start = Array.unsafe_get data (p + 5);
            d_stop = Array.unsafe_get data (p + 6);
            d_level = Array.unsafe_get data (p + 7);
          };
        incr k;
        o := p + 8
      done
    in
    List.iter
      (fun b ->
        List.iter (fun c -> emit c (Array.length c)) (List.rev b.full);
        emit b.cur b.cur_len)
      bufs;
    out
  end

(* Stack-Tree-Desc specialized to the columnar element snapshots of one
   segment (virtual local labels), emitting index pairs through [emit].
   The ancestor stack holds plain indices into [anc] in a growable int
   array, so the merge loop allocates nothing at all.  [guard] is
   checked once per merge step, so a cancel or deadline stops a large
   in-segment join mid-scan. *)
let in_segment_join ?guard ~axis ~(anc : Seg_cache.cols) ~(desc : Seg_cache.cols) ~emit () =
  let n_a = Seg_cache.cols_length anc and n_d = Seg_cache.cols_length desc in
  if n_a > 0 && n_d > 0 then begin
    let stack = ref (Array.make (min 16 n_a) 0) in
    let top = ref 0 in
    let push ai =
      if !top = Array.length !stack then begin
        let bigger = Array.make (2 * !top) 0 in
        Array.blit !stack 0 bigger 0 !top;
        stack := bigger
      end;
      !stack.(!top) <- ai;
      incr top
    in
    let ia = ref 0 and id = ref 0 in
    while !id < n_d && (!ia < n_a || !top > 0) do
      Deadline.check_opt guard;
      let d_start = Array.unsafe_get desc.starts !id in
      let a_start = if !ia < n_a then Array.unsafe_get anc.starts !ia else max_int in
      if a_start < d_start then begin
        while
          !top > 0
          && Array.unsafe_get anc.stops (Array.unsafe_get !stack (!top - 1)) <= a_start
        do
          decr top
        done;
        push !ia;
        incr ia
      end
      else begin
        while
          !top > 0
          && Array.unsafe_get anc.stops (Array.unsafe_get !stack (!top - 1)) <= d_start
        do
          decr top
        done;
        (* Innermost (most recently pushed) ancestor first, matching
           the emission order of the list-stack original. *)
        (match axis with
        | Descendant ->
          for j = !top - 1 downto 0 do
            emit (Array.unsafe_get !stack j) !id
          done
        | Child ->
          let dl = Array.unsafe_get desc.levels !id in
          for j = !top - 1 downto 0 do
            let ai = Array.unsafe_get !stack j in
            if dl = Array.unsafe_get anc.levels ai + 1 then emit ai !id
          done);
        incr id
      end
    done
  end

(* One unit of join generation (everything Step 3 of Figure 9 needs
   for one SL_D entry), produced by the sequential segment-merge pass
   and executable on any domain: it captures plain integers and
   immutable columnar snapshots, and its execution touches the log
   only through the read-only element index — or not at all, when the
   merge pass pre-resolved its snapshots ([d_pre]/[a_pre]) through the
   cache.  Pre-resolution is what keeps worker domains away from the
   cache's LRU bookkeeping. *)
type d_task = {
  d_sid : int;
  cross : (int * int * Seg_cache.cols) list;
      (* (P_T^S, ancestor sid, surviving A-elements) per stack frame, top first *)
  in_seg : bool;  (* the same segment holds both tags *)
  mutable d_pre : Seg_cache.cols option;
  mutable a_pre : Seg_cache.cols option;
}

(* Runs one task: cross-segment emission (Proposition 3), then the
   in-segment join.  [stats] and [out] are owned by the caller — under
   the pool each chunk gets its own, merged afterwards.  D-elements
   are resolved on first use (and counted then, whether pre-resolved
   or fetched), preserving the lazy fetch accounting of the
   list-based implementation exactly.  [guard] is checked at task
   entry and per cross frame, so a parallel join observes a cancel
   within one pool chunk. *)
let exec_task ?guard ~axis ~fetch_a ~fetch_d ~stats ~out task =
  Deadline.check_opt guard;
  let d_got = ref None in
  let get_d () =
    match !d_got with
    | Some c -> c
    | None ->
      let c =
        match task.d_pre with
        | Some c ->
          stats.elements_fetched <- stats.elements_fetched + Seg_cache.cols_length c;
          c
        | None -> fetch_d task.d_sid
      in
      d_got := Some c;
      c
  in
  List.iter
    (fun (p, a_sid, (a : Seg_cache.cols)) ->
      Deadline.check_opt guard;
      let n_a = Seg_cache.cols_length a in
      for i = 0 to n_a - 1 do
        if Array.unsafe_get a.starts i < p && Array.unsafe_get a.stops i > p then begin
          let d = get_d () in
          let n_d = Seg_cache.cols_length d in
          let a_start = Array.unsafe_get a.starts i
          and a_stop = Array.unsafe_get a.stops i
          and a_level = Array.unsafe_get a.levels i in
          match axis with
          | Descendant ->
            for j = 0 to n_d - 1 do
              buf_push8 out a_sid a_start a_stop a_level task.d_sid
                (Array.unsafe_get d.starts j)
                (Array.unsafe_get d.stops j)
                (Array.unsafe_get d.levels j)
            done;
            stats.cross_pairs <- stats.cross_pairs + n_d
          | Child ->
            let child_level = a_level + 1 in
            for j = 0 to n_d - 1 do
              if Array.unsafe_get d.levels j = child_level then begin
                buf_push8 out a_sid a_start a_stop a_level task.d_sid
                  (Array.unsafe_get d.starts j)
                  (Array.unsafe_get d.stops j)
                  (Array.unsafe_get d.levels j);
                stats.cross_pairs <- stats.cross_pairs + 1
              end
            done
        end
      done)
    task.cross;
  if task.in_seg then begin
    let a =
      match task.a_pre with
      | Some c ->
        stats.elements_fetched <- stats.elements_fetched + Seg_cache.cols_length c;
        c
      | None -> fetch_a task.d_sid
    in
    let d = get_d () in
    in_segment_join ?guard ~axis ~anc:a ~desc:d
      ~emit:(fun ai di ->
        buf_push8 out task.d_sid
          (Array.unsafe_get a.starts ai)
          (Array.unsafe_get a.stops ai)
          (Array.unsafe_get a.levels ai)
          task.d_sid
          (Array.unsafe_get d.starts di)
          (Array.unsafe_get d.stops di)
          (Array.unsafe_get d.levels di);
        stats.in_pairs <- stats.in_pairs + 1)
      ()
  end

(* The segment-merge pass of Figure 9 (steps 1-3): walks SL_A and SL_D
   by global position with the segment stack and hands every surviving
   SL_D entry to [emit_task] as a self-contained work unit.  All
   ER-tree, tag-list and cache access happens here, on the calling
   thread; only element-index reads are deferred to the tasks. *)
let plan ?guard ~push_filter ~trim_top ~stats ~fetch_a ~emit_task log ~sla ~sld () =
  let stack = ref [] in
  let ia = ref 0 and id = ref 0 in
  while !id < Array.length sld && (!ia < Array.length sla || !stack <> []) do
    Deadline.check_opt guard;
    let sd_entry = sld.(!id) in
    let sd_node = Update_log.node_of_sid log sd_entry.Tag_list.sid in
    match !stack with
    | top :: rest when sd_node.Er_node.gp > top.node.Er_node.gp + top.node.Er_node.len ->
      (* Step 1: the top segment cannot contain sd nor any later
         segment of SL_D. *)
      stack := rest
    | _ ->
      let sa_node =
        if !ia < Array.length sla then
          Some (Update_log.node_of_sid log sla.(!ia).Tag_list.sid)
        else None
      in
      (match sa_node with
      | Some sa when sa.Er_node.gp < sd_node.Er_node.gp ->
        (* Step 2: push sa if it contains sd, else skip it forever
           (segments nest as a tree, so not containing means
           disjoint from everything at or after sd). *)
        stats.a_segments <- stats.a_segments + 1;
        if contains_seg sa sd_node then begin
          let base : Seg_cache.cols = fetch_a sa.Er_node.sid in
          (* Optimization (i): keep only A-elements that contain at
             least one child-segment position.  Children are kept in
             document order, so the smallest hook position above
             [start] — found by binary search — decides containment
             without scanning the whole child list per element. *)
          let elems =
            if not push_filter then base
            else begin
              let kids = sa.Er_node.children in
              let nk = Vec.length kids in
              if nk = 0 then Seg_cache.empty_cols
              else
                cols_filter
                  (fun i ->
                    let s = base.starts.(i) in
                    let j =
                      Vec.lower_bound kids ~compare:(fun (c : Er_node.t) ->
                          if c.Er_node.lp <= s then -1 else 1)
                    in
                    j < nk && (Vec.get kids j).Er_node.lp < base.stops.(i))
                  base
            end
          in
          (* Optimization (ii): drop from the current top the
             elements that end at or before the position of sa —
             they cannot contain sa or any later segment. *)
          (match !stack with
          | top :: _ when trim_top -> begin
            match p_of_frame log top (Er_node.path sa) with
            | p ->
              let e = top.elems in
              top.elems <- cols_filter (fun i -> e.Seg_cache.stops.(i) > p) e
            | exception Not_found -> ()
          end
          | _ -> ());
          stack := { node = sa; depth = seg_depth sa; elems } :: !stack;
          stats.segments_pushed <- stats.segments_pushed + 1
        end
        else stats.segments_skipped <- stats.segments_skipped + 1;
        incr ia
      | _ ->
        (* Step 3: join generation for sd.  Parent-child pairs across
           segments are decided by the absolute-level check at
           execution time: with multi-rooted fragments an intermediate
           segment can contribute zero element depth, so (unlike the
           single-rooted case of §4.2) they are not confined to the
           direct parent segment. *)
        let cross =
          List.filter_map
            (fun fr ->
              if Seg_cache.cols_length fr.elems = 0 then None
              else
                match p_of_frame log fr sd_entry.Tag_list.path with
                | p -> Some (p, fr.node.Er_node.sid, fr.elems)
                | exception Not_found -> None)
            !stack
        in
        let in_seg =
          match sa_node with
          | Some sa when sa.Er_node.sid = sd_node.Er_node.sid -> true
          | _ -> false
        in
        if in_seg then stats.in_segment_joins <- stats.in_segment_joins + 1;
        if cross <> [] || in_seg then
          emit_task { d_sid = sd_node.Er_node.sid; cross; in_seg; d_pre = None; a_pre = None };
        stats.d_segments <- stats.d_segments + 1;
        incr id)
  done

let run ?(axis = Descendant) ?(push_filter = true) ?(trim_top = true) ?a_filter ?d_filter
    ?pool ?guard ?scratch log ~anc ~desc () =
  let stats = zero_stats () in
  Deadline.check_opt guard;
  Update_log.prepare_for_query log;
  let reg = Update_log.registry log in
  match (Tag_registry.find reg anc, Tag_registry.find reg desc) with
  | None, _ | _, None -> ([||], stats)
  | Some tid_a, Some tid_d ->
    (* Planner-supplied prefilters (selective Proposition 3): entries
       dropped here are skipped before any ER-tree or element-index
       access.  An A-side drop removes exactly the pairs whose ancestor
       lives in that segment (in-segment pairs included — the in-seg
       trigger fires off the current SL_A entry); a D-side drop removes
       exactly the pairs whose descendant lives there. *)
    let prefilter f arr =
      match f with
      | None -> arr
      | Some keep ->
        let kept = Array.of_list (List.filter keep (Array.to_list arr)) in
        stats.segments_prefiltered <-
          stats.segments_prefiltered + Array.length arr - Array.length kept;
        kept
    in
    let sla = prefilter a_filter (Update_log.segments_for_tag log ~tag:anc) in
    let sld = prefilter d_filter (Update_log.segments_for_tag log ~tag:desc) in
    (* Columnar elements of one tag in one segment, resolved through
       the log's cache; the snapshots are then shared by every emitted
       pair.  [into] receives the fetch count — the per-chunk stats
       record under the pool. *)
    let fetch tid into sid =
      let c = Update_log.elements_cols log ~tid ~sid in
      into.elements_fetched <- into.elements_fetched + Seg_cache.cols_length c;
      c
    in
    let parallel =
      match pool with
      | Some p when Domain_pool.size p > 1 && Array.length sld > 1 -> Some p
      | _ -> None
    in
    (match parallel with
    | None ->
      (* Sequential: execute each join unit as the merge produces it.
         With [?scratch] the output chunks of the previous run are
         recycled, so a warm repeated query allocates no fresh buffer
         storage. *)
      let out =
        match scratch with
        | Some b ->
          buf_reset b;
          b
        | None -> buf_create ()
      in
      plan ?guard ~push_filter ~trim_top ~stats ~fetch_a:(fetch tid_a stats)
        ~emit_task:
          (exec_task ?guard ~axis ~fetch_a:(fetch tid_a stats)
             ~fetch_d:(fetch tid_d stats) ~stats ~out)
        log ~sla ~sld ();
      (bufs_to_pairs [ out ], stats)
    | Some p ->
      (* Parallel: the merge pass collects the join units, the pool
         executes them with per-task output buffers and stats, and the
         merge below re-reads both in task order — so pairs come out
         byte-identical to the sequential path and stats totals are
         exact, not approximate.  With the cache enabled, the merge
         pass also pre-resolves each task's snapshots here on the
         calling thread (uncounted — tasks count at first use), so
         worker domains never touch the cache.  With it disabled,
         workers read the element index directly, as before.  Each
         task re-checks [guard], so a cancel aborts the pool run
         within one chunk. *)
      let cache_on = Seg_cache.enabled (Update_log.cache log) in
      let tasks = Vec.create () in
      let collect (t : d_task) =
        if cache_on then begin
          t.d_pre <- Some (Update_log.elements_cols log ~tid:tid_d ~sid:t.d_sid);
          if t.in_seg then
            t.a_pre <- Some (Update_log.elements_cols log ~tid:tid_a ~sid:t.d_sid)
        end;
        Vec.push tasks t
      in
      plan ?guard ~push_filter ~trim_top ~stats ~fetch_a:(fetch tid_a stats)
        ~emit_task:collect log ~sla ~sld ();
      let tasks = Vec.to_array tasks in
      let results =
        Domain_pool.map p (Array.length tasks) (fun i ->
            let lstats = zero_stats () in
            let out = buf_create () in
            exec_task ?guard ~axis ~fetch_a:(fetch tid_a lstats)
              ~fetch_d:(fetch tid_d lstats) ~stats:lstats ~out tasks.(i);
            (out, lstats))
      in
      Array.iter (fun (_, lstats) -> add_stats stats lstats) results;
      (bufs_to_pairs (Array.to_list (Array.map fst results)), stats))

let global_pairs log pairs =
  let gstart sid ~start ~stop =
    let node = Update_log.node_of_sid log sid in
    fst (Er_node.global_extent_span node ~start ~stop)
  in
  Array.to_list pairs
  |> List.map (fun p ->
         ( gstart p.a_sid ~start:p.a_start ~stop:p.a_stop,
           gstart p.d_sid ~start:p.d_start ~stop:p.d_stop ))
  |> List.sort (fun (a1, d1) (a2, d2) -> compare (d1, a1) (d2, a2))
