open Lxu_util
open Lxu_seglog

type axis = Descendant | Child

type elem_ref = { sid : int; start : int; stop : int; level : int }
type pair = { anc : elem_ref; desc : elem_ref }

type stats = {
  mutable a_segments : int;
  mutable d_segments : int;
  mutable segments_pushed : int;
  mutable segments_skipped : int;
  mutable in_segment_joins : int;
  mutable cross_pairs : int;
  mutable in_pairs : int;
  mutable elements_fetched : int;
}

let zero_stats () =
  {
    a_segments = 0;
    d_segments = 0;
    segments_pushed = 0;
    segments_skipped = 0;
    in_segment_joins = 0;
    cross_pairs = 0;
    in_pairs = 0;
    elements_fetched = 0;
  }

let add_stats into s =
  into.a_segments <- into.a_segments + s.a_segments;
  into.d_segments <- into.d_segments + s.d_segments;
  into.segments_pushed <- into.segments_pushed + s.segments_pushed;
  into.segments_skipped <- into.segments_skipped + s.segments_skipped;
  into.in_segment_joins <- into.in_segment_joins + s.in_segment_joins;
  into.cross_pairs <- into.cross_pairs + s.cross_pairs;
  into.in_pairs <- into.in_pairs + s.in_pairs;
  into.elements_fetched <- into.elements_fetched + s.elements_fetched

type frame = {
  node : Er_node.t;
  depth : int;  (* ER-tree depth: index of [node.sid] in any descendant's path *)
  mutable elems : elem_ref array;
      (* candidate A-elements, by start; replaced (never mutated in
         place) so join units that captured an earlier version keep it *)
}

let contains_seg (a : Er_node.t) (d : Er_node.t) =
  a.Er_node.gp < d.Er_node.gp && a.Er_node.gp + a.Er_node.len > d.Er_node.gp + d.Er_node.len

let seg_depth (n : Er_node.t) =
  let rec up acc = function None -> acc | Some p -> up (acc + 1) p.Er_node.parent in
  up 0 n.Er_node.parent

(* Local position, within the frame's segment, of the child segment on
   the path to the segment whose tag-list [path] is given (P_T^S of
   §4.1).  Paths are root chains, so the frame's sid sits at index
   [frame.depth] of every descendant's path — an O(1) lookup the paper
   sketches as "computed after each push and stored". *)
let p_of_frame log fr (path : int array) =
  let i = fr.depth in
  if i + 1 >= Array.length path || path.(i) <> fr.node.Er_node.sid then raise Not_found
  else (Update_log.node_of_sid log path.(i + 1)).Er_node.lp

(* Order-preserving filter that returns the input array untouched when
   nothing is dropped — the common case on the push path. *)
let array_filter keep a =
  let n = Array.length a in
  let kept = ref 0 in
  let mask = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    if keep a.(i) then begin
      Bytes.unsafe_set mask i '\001';
      incr kept
    end
  done;
  if !kept = n then a
  else if !kept = 0 then [||]
  else begin
    let r = Array.make !kept a.(0) in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.unsafe_get mask i = '\001' then begin
        r.(!j) <- a.(i);
        incr j
      end
    done;
    r
  end

(* Stack-Tree-Desc specialized to elem_ref arrays of one segment
   (virtual local labels), emitting pairs through [emit].  Avoids any
   conversion to and from interval records on the hot output path; the
   ancestor stack is a growable array indexed by [top], so the inner
   loop allocates nothing per push/pop.  [guard] is checked once per
   merge step, so a cancel or deadline stops a large in-segment join
   mid-scan. *)
let in_segment_join ?guard ~axis ~anc ~desc ~emit () =
  let n_a = Array.length anc and n_d = Array.length desc in
  if n_a > 0 && n_d > 0 then begin
    let stack = ref (Array.make (min 16 n_a) anc.(0)) in
    let top = ref 0 in
    let push a =
      if !top = Array.length !stack then begin
        let bigger = Array.make (2 * !top) a in
        Array.blit !stack 0 bigger 0 !top;
        stack := bigger
      end;
      !stack.(!top) <- a;
      incr top
    in
    let ia = ref 0 and id = ref 0 in
    while !id < n_d && (!ia < n_a || !top > 0) do
      Deadline.check_opt guard;
      let d = desc.(!id) in
      let a_start = if !ia < n_a then anc.(!ia).start else max_int in
      if a_start < d.start then begin
        let a = anc.(!ia) in
        while !top > 0 && (!stack).(!top - 1).stop <= a.start do
          decr top
        done;
        push a;
        incr ia
      end
      else begin
        while !top > 0 && (!stack).(!top - 1).stop <= d.start do
          decr top
        done;
        (* Innermost (most recently pushed) ancestor first, matching
           the emission order of the list-stack original. *)
        for j = !top - 1 downto 0 do
          let a = (!stack).(j) in
          match axis with
          | Descendant -> emit a d
          | Child -> if d.level = a.level + 1 then emit a d
        done;
        incr id
      end
    done
  end

(* One unit of join generation (everything Step 3 of Figure 9 needs
   for one SL_D entry), produced by the sequential segment-merge pass
   and executable on any domain: it captures plain integers and
   immutable element arrays, and its execution touches the log only
   through the read-only element index. *)
type d_task = {
  d_sid : int;
  cross : (int * elem_ref array) list;
      (* (P_T^S, surviving A-elements) per stack frame, top first *)
  in_seg : bool;  (* the same segment holds both tags *)
}

(* Runs one task: cross-segment emission (Proposition 3), then the
   in-segment join.  [stats] and [out] are owned by the caller — under
   the pool each chunk gets its own, merged afterwards.  [guard] is
   checked at task entry and per cross frame, so a parallel join
   observes a cancel within one pool chunk — every task of a chunk
   re-checks before doing work. *)
let exec_task ?guard ~axis ~fetch_a ~fetch_d ~stats ~out task =
  Deadline.check_opt guard;
  let d_elems = lazy (fetch_d task.d_sid) in
  List.iter
    (fun (p, elems) ->
      Deadline.check_opt guard;
      Array.iter
        (fun (a : elem_ref) ->
          if a.start < p && a.stop > p then
            Array.iter
              (fun (d : elem_ref) ->
                let level_ok =
                  match axis with
                  | Descendant -> true
                  | Child -> d.level = a.level + 1
                in
                if level_ok then begin
                  Vec.push out { anc = a; desc = d };
                  stats.cross_pairs <- stats.cross_pairs + 1
                end)
              (Lazy.force d_elems))
        elems)
    task.cross;
  if task.in_seg then begin
    let a_elems = fetch_a task.d_sid in
    in_segment_join ?guard ~axis ~anc:a_elems ~desc:(Lazy.force d_elems)
      ~emit:(fun a d ->
        Vec.push out { anc = a; desc = d };
        stats.in_pairs <- stats.in_pairs + 1)
      ()
  end

(* The segment-merge pass of Figure 9 (steps 1-3): walks SL_A and SL_D
   by global position with the segment stack and hands every surviving
   SL_D entry to [emit_task] as a self-contained work unit.  All
   ER-tree and tag-list access happens here, on the calling thread;
   only element-index reads are deferred to the tasks. *)
let plan ?guard ~push_filter ~trim_top ~stats ~fetch_a ~emit_task log ~sla ~sld () =
  let stack = ref [] in
  let ia = ref 0 and id = ref 0 in
  while !id < Array.length sld && (!ia < Array.length sla || !stack <> []) do
    Deadline.check_opt guard;
    let sd_entry = sld.(!id) in
    let sd_node = Update_log.node_of_sid log sd_entry.Tag_list.sid in
    match !stack with
    | top :: rest when sd_node.Er_node.gp > top.node.Er_node.gp + top.node.Er_node.len ->
      (* Step 1: the top segment cannot contain sd nor any later
         segment of SL_D. *)
      stack := rest
    | _ ->
      let sa_node =
        if !ia < Array.length sla then
          Some (Update_log.node_of_sid log sla.(!ia).Tag_list.sid)
        else None
      in
      (match sa_node with
      | Some sa when sa.Er_node.gp < sd_node.Er_node.gp ->
        (* Step 2: push sa if it contains sd, else skip it forever
           (segments nest as a tree, so not containing means
           disjoint from everything at or after sd). *)
        stats.a_segments <- stats.a_segments + 1;
        if contains_seg sa sd_node then begin
          (* Optimization (i): keep only A-elements that contain at
             least one child-segment position. *)
          let keep (r : elem_ref) =
            (not push_filter)
            || Vec.exists
                 (fun (c : Er_node.t) -> r.start < c.Er_node.lp && c.Er_node.lp < r.stop)
                 sa.Er_node.children
          in
          let elems = array_filter keep (fetch_a sa.Er_node.sid) in
          (* Optimization (ii): drop from the current top the
             elements that end at or before the position of sa —
             they cannot contain sa or any later segment. *)
          (match !stack with
          | top :: _ when trim_top -> begin
            match p_of_frame log top (Er_node.path sa) with
            | p -> top.elems <- array_filter (fun (r : elem_ref) -> r.stop > p) top.elems
            | exception Not_found -> ()
          end
          | _ -> ());
          stack := { node = sa; depth = seg_depth sa; elems } :: !stack;
          stats.segments_pushed <- stats.segments_pushed + 1
        end
        else stats.segments_skipped <- stats.segments_skipped + 1;
        incr ia
      | _ ->
        (* Step 3: join generation for sd.  Parent-child pairs across
           segments are decided by the absolute-level check at
           execution time: with multi-rooted fragments an intermediate
           segment can contribute zero element depth, so (unlike the
           single-rooted case of §4.2) they are not confined to the
           direct parent segment. *)
        let cross =
          List.filter_map
            (fun fr ->
              if Array.length fr.elems = 0 then None
              else
                match p_of_frame log fr sd_entry.Tag_list.path with
                | p -> Some (p, fr.elems)
                | exception Not_found -> None)
            !stack
        in
        let in_seg =
          match sa_node with
          | Some sa when sa.Er_node.sid = sd_node.Er_node.sid -> true
          | _ -> false
        in
        if in_seg then stats.in_segment_joins <- stats.in_segment_joins + 1;
        if cross <> [] || in_seg then
          emit_task { d_sid = sd_node.Er_node.sid; cross; in_seg };
        stats.d_segments <- stats.d_segments + 1;
        incr id)
  done

let run ?(axis = Descendant) ?(push_filter = true) ?(trim_top = true) ?pool ?guard log
    ~anc ~desc () =
  let stats = zero_stats () in
  Deadline.check_opt guard;
  Update_log.prepare_for_query log;
  let reg = Update_log.registry log in
  match (Tag_registry.find reg anc, Tag_registry.find reg desc) with
  | None, _ | _, None -> ([], stats)
  | Some tid_a, Some tid_d ->
    let sla = Update_log.segments_for_tag log ~tag:anc in
    let sld = Update_log.segments_for_tag log ~tag:desc in
    (* Elements of one tag in one segment, converted to refs once; the
       refs are then shared by every emitted pair.  [into] receives the
       fetch count — the per-chunk stats record under the pool. *)
    let fetch tid into sid =
      let keys = Update_log.elements_of log ~tid ~sid in
      into.elements_fetched <- into.elements_fetched + Array.length keys;
      Array.map
        (fun (k : Element_index.key) ->
          {
            sid = k.Element_index.sid;
            start = k.Element_index.start;
            stop = k.Element_index.stop;
            level = k.Element_index.level;
          })
        keys
    in
    let parallel =
      match pool with
      | Some p when Domain_pool.size p > 1 && Array.length sld > 1 -> Some p
      | _ -> None
    in
    (match parallel with
    | None ->
      (* Sequential: execute each join unit as the merge produces it. *)
      let out = Vec.create () in
      plan ?guard ~push_filter ~trim_top ~stats ~fetch_a:(fetch tid_a stats)
        ~emit_task:
          (exec_task ?guard ~axis ~fetch_a:(fetch tid_a stats)
             ~fetch_d:(fetch tid_d stats) ~stats ~out)
        log ~sla ~sld ();
      (Vec.to_list out, stats)
    | Some p ->
      (* Parallel: the merge pass collects the join units, the pool
         executes them with per-task output buffers and stats, and the
         merge below re-reads both in task order — so pairs come out
         byte-identical to the sequential path and stats totals are
         exact, not approximate.  Each task re-checks [guard], so a
         cancel aborts the pool run within one chunk: the first task
         to observe it raises, the pool abandons unclaimed chunks, and
         [Domain_pool.map] re-raises here. *)
      let tasks = Vec.create () in
      plan ?guard ~push_filter ~trim_top ~stats ~fetch_a:(fetch tid_a stats)
        ~emit_task:(Vec.push tasks) log ~sla ~sld ();
      let tasks = Vec.to_array tasks in
      let results =
        Domain_pool.map p (Array.length tasks) (fun i ->
            let lstats = zero_stats () in
            let out = Vec.create () in
            exec_task ?guard ~axis ~fetch_a:(fetch tid_a lstats)
              ~fetch_d:(fetch tid_d lstats) ~stats:lstats ~out tasks.(i);
            (out, lstats))
      in
      let acc = ref [] in
      for i = Array.length results - 1 downto 0 do
        let out, _ = results.(i) in
        for j = Vec.length out - 1 downto 0 do
          acc := Vec.get out j :: !acc
        done
      done;
      Array.iter (fun (_, lstats) -> add_stats stats lstats) results;
      (!acc, stats))

let global_pairs log pairs =
  let gstart (r : elem_ref) =
    let node = Update_log.node_of_sid log r.sid in
    let e = { Er_node.start = r.start; stop = r.stop; level = r.level; tid = 0 } in
    fst (Er_node.global_extent node e)
  in
  pairs
  |> List.map (fun { anc; desc } -> (gstart anc, gstart desc))
  |> List.sort (fun (a1, d1) (a2, d2) -> compare (d1, a1) (d2, a2))
