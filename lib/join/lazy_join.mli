(** Lazy-Join (§4.2, Figure 9): the segment-aware structural join.

    Merges the two tag-list segment lists ([SL_A], [SL_D]) by global
    position with a stack of ancestor segments.  Cross-segment joins
    use Proposition 3: an A-element joins every D-element of a
    descendant segment iff it strictly contains the local position of
    the stack segment's child on the path to that segment — so whole
    segments (and whole element sets) are skipped or bulk-emitted
    without per-element comparisons.  In-segment joins fall back to
    Stack-Tree-Desc on the segment's immutable virtual labels.

    Both Figure 9 optimizations are applied: only A-elements containing
    at least one child segment are pushed, and on each push the top
    frame drops elements that end before the pushed segment starts.

    Under a [Lazy_static] log the pre-query sorting cost is incurred
    here (the run calls {!Lxu_seglog.Update_log.prepare_for_query}),
    matching the paper's LS accounting.

    With [?pool], the element-level work is executed segment-parallel
    on OCaml 5 domains: the segment-merge pass (which touches the
    mutable ER-tree, SB-tree and tag lists) stays on the calling
    thread and produces one self-contained join unit per surviving
    SL_D entry; the pool then runs the units' in-segment joins and
    cross-segment emission in chunks, each with its own output buffer
    and stats record, merged back in unit order.  Pairs and stats are
    therefore identical to the sequential path — order included —
    regardless of pool size or schedule.

    Element sets are fetched through the log's
    {!Lxu_seglog.Seg_cache} as columnar struct-of-arrays snapshots,
    and the join kernels run directly on those unboxed [int array]s,
    writing results into a flat integer buffer: the inner loops
    allocate nothing per element.  [pair] records are built once at
    the API boundary.  Under a pool with the cache enabled, each
    unit's snapshots are pre-resolved during the (sequential) merge
    pass, so worker domains never touch the cache's bookkeeping —
    with the cache disabled they read the element index directly, as
    before. *)

type axis = Descendant | Child

type pair = {
  a_sid : int;
  a_start : int;
  a_stop : int;
  a_level : int;
  d_sid : int;
  d_start : int;
  d_stop : int;
  d_level : int;
}
(** One ancestor/descendant result: each side is (segment, virtual
    extent, absolute level).  A single flat block of immediate fields
    — materializing a result array allocates one small block per pair
    and nothing the GC has to trace into. *)

type stats = {
  mutable a_segments : int;  (** SL_A entries consumed *)
  mutable d_segments : int;  (** SL_D entries consumed *)
  mutable segments_pushed : int;
  mutable segments_skipped : int;
      (** SL_A segments discarded without element access *)
  mutable in_segment_joins : int;  (** segment pairs joined in-segment *)
  mutable cross_pairs : int;
  mutable in_pairs : int;
  mutable elements_fetched : int;  (** element-index records read *)
  mutable segments_prefiltered : int;
      (** SL entries dropped by the caller's [a_filter]/[d_filter]
          before any ER-tree or element access *)
}

type scratch
(** Reusable output-buffer storage for {!run}.  The join writes
    results into fixed-size integer chunks; chunks above 256 words are
    major-heap allocations, so a caller issuing many queries can hand
    the same scratch to each sequential [run] and the chunks are
    recycled instead of re-allocated — repeated warm queries then add
    no buffer garbage.  A scratch must not be shared between
    concurrent runs; it is rewound (not read) on entry, so reuse never
    affects results. *)

val scratch : unit -> scratch
(** A fresh, empty scratch. *)

val run :
  ?axis:axis ->
  ?push_filter:bool ->
  ?trim_top:bool ->
  ?a_filter:(Lxu_seglog.Tag_list.entry -> bool) ->
  ?d_filter:(Lxu_seglog.Tag_list.entry -> bool) ->
  ?pool:Lxu_util.Domain_pool.t ->
  ?guard:Lxu_util.Deadline.guard ->
  ?scratch:scratch ->
  Lxu_seglog.Update_log.t ->
  anc:string ->
  desc:string ->
  unit ->
  pair array * stats
(** [run log ~anc ~desc ()] evaluates the path expression
    [anc//desc] (or [anc/desc] with [~axis:Child]), returning pairs
    ordered by descendant segment.

    [push_filter] (default on) is Figure 9's optimization (i): push
    only A-elements containing at least one child segment.  [trim_top]
    (default on) is optimization (ii): on each push, drop from the top
    frame the elements ending before the pushed segment.  Both flags
    exist for the ablation benchmark; disabling them changes cost, not
    results.

    [a_filter]/[d_filter] (default: keep everything) drop tag-list
    entries from [SL_A]/[SL_D] before the merge pass — the planner's
    selective Proposition 3.  A dropped entry is never resolved to an
    ER node and its elements are never fetched.  Soundness is the
    caller's contract: the result is exactly the unfiltered pair set
    minus pairs whose ancestor (A-side drop) or descendant (D-side
    drop) lives in a dropped segment, so filters are lossless whenever
    the caller only discards segments it can prove contribute no
    wanted pair (e.g. by synopsis evidence or membership of a
    restriction set).

    [pool] runs the per-segment join units on the given domain pool
    (see the module comment); omitted, or with a pool of size 1, the
    run is fully sequential.  Results never depend on the choice.

    [scratch] recycles output-buffer chunks across sequential runs
    (see {!type:scratch}); it is ignored when the run goes parallel,
    where each task owns a private buffer.

    [guard] makes the join cooperative: the segment-merge loop, every
    join unit, and every in-segment merge step call
    {!Lxu_util.Deadline.check}, so the run raises
    [Lxu_util.Deadline.Cancel.Cancelled] within one unit of the
    deadline expiring or the token firing — under a pool, within one
    chunk.  Without [guard] the run is exactly the ungoverned join:
    identical pairs and stats, one extra branch per check point. *)

val global_pairs : Lxu_seglog.Update_log.t -> pair array -> (int * int) list
(** Translates pairs to [(anc_gstart, desc_gstart)] global positions,
    sorted by [(desc, anc)] — the canonical form for comparing against
    the classical algorithms. *)
