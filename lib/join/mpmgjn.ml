open Lxu_labeling

let join_cols ?(axis = Stack_tree_desc.Descendant) ?guard
    ~(anc : Lxu_seglog.Seg_cache.cols) ~(desc : Lxu_seglog.Seg_cache.cols) () =
  let stats = { Stack_tree_desc.a_scanned = 0; d_scanned = 0; pairs = 0 } in
  let open Lxu_seglog in
  let n_a = Seg_cache.cols_length anc and n_d = Seg_cache.cols_length desc in
  (* Flat output, (a_start, d_start) per pair: the merge loop writes
     plain ints, no interval records or list cells. *)
  let out = ref (Array.make (max 64 (2 * n_d)) 0) in
  let len = ref 0 in
  let push2 x y =
    if !len + 2 > Array.length !out then begin
      let bigger = Array.make (2 * Array.length !out) 0 in
      Array.blit !out 0 bigger 0 !len;
      out := bigger
    end;
    Array.unsafe_set !out !len x;
    Array.unsafe_set !out (!len + 1) y;
    len := !len + 2
  in
  let mark = ref 0 in
  for i = 0 to n_a - 1 do
    Lxu_util.Deadline.check_opt guard;
    stats.Stack_tree_desc.a_scanned <- stats.Stack_tree_desc.a_scanned + 1;
    let a_start = anc.starts.(i) and a_stop = anc.stops.(i) in
    while !mark < n_d && Array.unsafe_get desc.starts !mark <= a_start do
      incr mark
    done;
    let j = ref !mark in
    while !j < n_d && Array.unsafe_get desc.starts !j < a_stop do
      stats.Stack_tree_desc.d_scanned <- stats.Stack_tree_desc.d_scanned + 1;
      let keep =
        Array.unsafe_get desc.stops !j <= a_stop
        &&
        match axis with
        | Stack_tree_desc.Descendant -> true
        | Stack_tree_desc.Child -> desc.levels.(!j) = anc.levels.(i) + 1
      in
      if keep then begin
        push2 a_start (Array.unsafe_get desc.starts !j);
        stats.Stack_tree_desc.pairs <- stats.Stack_tree_desc.pairs + 1
      end;
      incr j
    done
  done;
  (Array.sub !out 0 !len, stats)

let join ?(axis = Stack_tree_desc.Descendant) ?guard ~anc ~desc () =
  let stats = { Stack_tree_desc.a_scanned = 0; d_scanned = 0; pairs = 0 } in
  let out = ref [] in
  let n_d = Array.length desc in
  let mark = ref 0 in
  Array.iter
    (fun (a : Interval.t) ->
      Lxu_util.Deadline.check_opt guard;
      stats.Stack_tree_desc.a_scanned <- stats.Stack_tree_desc.a_scanned + 1;
      (* Advance the mark past descendants that precede this ancestor;
         they precede every later ancestor too. *)
      while !mark < n_d && desc.(!mark).Interval.start <= a.Interval.start do
        incr mark
      done;
      (* Scan (and possibly re-scan, for nested ancestors) the
         descendants inside [a]. *)
      let j = ref !mark in
      while !j < n_d && desc.(!j).Interval.start < a.Interval.stop do
        stats.Stack_tree_desc.d_scanned <- stats.Stack_tree_desc.d_scanned + 1;
        let d = desc.(!j) in
        let keep =
          d.Interval.stop <= a.Interval.stop
          &&
          match axis with
          | Stack_tree_desc.Descendant -> true
          | Stack_tree_desc.Child -> d.Interval.level = a.Interval.level + 1
        in
        if keep then begin
          out := (a, d) :: !out;
          stats.Stack_tree_desc.pairs <- stats.Stack_tree_desc.pairs + 1
        end;
        incr j
      done)
    anc;
  (List.rev !out, stats)
