open Lxu_labeling

let join ?(axis = Stack_tree_desc.Descendant) ?guard ~anc ~desc () =
  let stats = { Stack_tree_desc.a_scanned = 0; d_scanned = 0; pairs = 0 } in
  let out = ref [] in
  let n_d = Array.length desc in
  let mark = ref 0 in
  Array.iter
    (fun (a : Interval.t) ->
      Lxu_util.Deadline.check_opt guard;
      stats.Stack_tree_desc.a_scanned <- stats.Stack_tree_desc.a_scanned + 1;
      (* Advance the mark past descendants that precede this ancestor;
         they precede every later ancestor too. *)
      while !mark < n_d && desc.(!mark).Interval.start <= a.Interval.start do
        incr mark
      done;
      (* Scan (and possibly re-scan, for nested ancestors) the
         descendants inside [a]. *)
      let j = ref !mark in
      while !j < n_d && desc.(!j).Interval.start < a.Interval.stop do
        stats.Stack_tree_desc.d_scanned <- stats.Stack_tree_desc.d_scanned + 1;
        let d = desc.(!j) in
        let keep =
          d.Interval.stop <= a.Interval.stop
          &&
          match axis with
          | Stack_tree_desc.Descendant -> true
          | Stack_tree_desc.Child -> d.Interval.level = a.Interval.level + 1
        in
        if keep then begin
          out := (a, d) :: !out;
          stats.Stack_tree_desc.pairs <- stats.Stack_tree_desc.pairs + 1
        end;
        incr j
      done)
    anc;
  (List.rev !out, stats)
