(** MPMGJN — the multi-predicate merge join of Zhang et al. (SIGMOD
    2001), the earliest containment-join baseline the paper surveys
    (§2, [14]).

    A relational-style merge over the two position lists: for every
    ancestor, descendants are scanned forward from a high-water mark
    that only ever moves to the first descendant not yet past the
    ancestor's start.  Nested ancestors force re-scans of the same
    descendants, which is exactly the inefficiency the stack-based
    algorithms remove — the [d_scanned] statistic exposes it. *)

val join :
  ?axis:Stack_tree_desc.axis ->
  ?guard:Lxu_util.Deadline.guard ->
  anc:Lxu_labeling.Interval.t array ->
  desc:Lxu_labeling.Interval.t array ->
  unit ->
  (Lxu_labeling.Interval.t * Lxu_labeling.Interval.t) list * Stack_tree_desc.stats
(** Inputs sorted by start; output sorted by
    (ancestor start, descendant start).  [guard] is checked once per
    ancestor, so the merge raises
    [Lxu_util.Deadline.Cancel.Cancelled] promptly on cancel or
    deadline expiry. *)

val join_cols :
  ?axis:Stack_tree_desc.axis ->
  ?guard:Lxu_util.Deadline.guard ->
  anc:Lxu_seglog.Seg_cache.cols ->
  desc:Lxu_seglog.Seg_cache.cols ->
  unit ->
  int array * Stack_tree_desc.stats
(** Columnar, allocation-light variant of {!join} over global
    coordinates (see {!Std_baseline.global_cols}): same merge and same
    stats, but the result is a flat
    [[|a0_start; d0_start; a1_start; d1_start; ...|]] buffer instead
    of a list of interval pairs — the kernel allocates nothing per
    element beyond buffer growth. *)
