open Lxu_util
open Lxu_seglog
open Lxu_labeling

type stats = {
  mutable elements_read : int;
  mutable pairs : int;
}

let global_list_counted log ~tag stats =
  let reg = Update_log.registry log in
  match Tag_registry.find reg tag with
  | None -> [||]
  | Some tid ->
    let acc = Vec.create () in
    Array.iter
      (fun (entry : Tag_list.entry) ->
        let node = Update_log.node_of_sid log entry.Tag_list.sid in
        let c : Seg_cache.cols = Update_log.elements_cols log ~tid ~sid:entry.Tag_list.sid in
        let n = Seg_cache.cols_length c in
        (match stats with
        | Some s -> s.elements_read <- s.elements_read + n
        | None -> ());
        for i = 0 to n - 1 do
          let gstart, gstop =
            Er_node.global_extent_span node ~start:c.starts.(i) ~stop:c.stops.(i)
          in
          Vec.push acc (Interval.make ~start:gstart ~stop:gstop ~level:c.levels.(i))
        done)
      (Update_log.segments_for_tag log ~tag);
    let a = Vec.to_array acc in
    Array.sort Interval.compare_start a;
    a

let global_list log ~tag =
  Update_log.prepare_for_query log;
  global_list_counted log ~tag None

let global_cols log ~tag =
  let a = global_list log ~tag in
  let n = Array.length a in
  let starts = Array.make n 0 and stops = Array.make n 0 and levels = Array.make n 0 in
  Array.iteri
    (fun i (iv : Interval.t) ->
      starts.(i) <- iv.Interval.start;
      stops.(i) <- iv.Interval.stop;
      levels.(i) <- iv.Interval.level)
    a;
  { Seg_cache.starts; stops; levels }

let run ?axis log ~anc ~desc () =
  let stats = { elements_read = 0; pairs = 0 } in
  Update_log.prepare_for_query log;
  let a = global_list_counted log ~tag:anc (Some stats) in
  let d = global_list_counted log ~tag:desc (Some stats) in
  let pairs, jstats = Stack_tree_desc.join ?axis ~anc:a ~desc:d () in
  stats.pairs <- jstats.Stack_tree_desc.pairs;
  (pairs, stats)
