(** The classical-join baseline over the lazy store (§4, first
    paragraph): "we first need to access the SB-tree to get the global
    position of the segments ... element global starting and ending
    positions can be generated and structural joins computed by using
    any existing algorithm."

    This is STD as the paper measures it: read {e every} element of
    both tags from the element index, translate each to a global
    interval, sort, and run Stack-Tree-Desc.  Unlike Lazy-Join it can
    skip nothing — which is exactly the comparison Figure 12 makes. *)

type stats = {
  mutable elements_read : int;  (** records fetched and translated *)
  mutable pairs : int;
}

val run :
  ?axis:Stack_tree_desc.axis ->
  Lxu_seglog.Update_log.t ->
  anc:string ->
  desc:string ->
  unit ->
  (Lxu_labeling.Interval.t * Lxu_labeling.Interval.t) list * stats
(** Result pairs carry global interval labels, sorted by descendant. *)

val global_list : Lxu_seglog.Update_log.t -> tag:string -> Lxu_labeling.Interval.t array
(** The translated, globally-sorted element list of one tag (the input
    list STD consumes).  Per-segment element sets are fetched through
    the log's {!Lxu_seglog.Seg_cache}; translation to global
    coordinates still happens per query (global positions move under
    updates, so they cannot be cached). *)

val global_cols : Lxu_seglog.Update_log.t -> tag:string -> Lxu_seglog.Seg_cache.cols
(** {!global_list} in columnar form (global coordinates, sorted by
    start) — the input of the allocation-light {!Mpmgjn.join_cols}. *)
