open Lxu_seglog

type config = {
  pack_min_segments : int;
  pack_min_depth : int;
  pack_tag_skew : int;
  max_pack_bytes : int;
  checkpoint_wal_bytes : int;
  merge_dirty_tags : int;
  backup_every : int;
  backup_dir : string option;
}

let default_config =
  {
    pack_min_segments = 8;
    pack_min_depth = 4;
    pack_tag_skew = 0;
    max_pack_bytes = 1 lsl 20;
    checkpoint_wal_bytes = 1 lsl 20;
    merge_dirty_tags = 16;
    backup_every = 0;
    backup_dir = None;
  }

type job =
  | Pack of { gp : int; len : int; segments : int; depth : int }
  | Merge_tag_runs of int
  | Checkpoint of int
  | Backup of { dir : string; lsn : int }
  | Cache_sweep

type outcome = Ran of job | Idle | Busy | Shed of Governor.rejection

let job_to_string = function
  | Pack { gp; len; segments; depth } ->
    Printf.sprintf "pack gp=%d len=%d segments=%d depth=%d" gp len segments depth
  | Merge_tag_runs n -> Printf.sprintf "merge %d dirty tag lists" n
  | Checkpoint bytes -> Printf.sprintf "checkpoint (wal was %d bytes)" bytes
  | Backup { dir; lsn } -> Printf.sprintf "backup to %s through lsn %d" dir lsn
  | Cache_sweep -> "cache sweep"

let outcome_to_string = function
  | Ran j -> "ran: " ^ job_to_string j
  | Idle -> "idle"
  | Busy -> "busy"
  | Shed r -> "shed: " ^ Governor.rejection_to_string r

type target = Governed of Governor.t | Direct of Lazy_db.t

type stats = {
  ticks : int;
  packs : int;
  merges : int;
  checkpoints : int;
  backups : int;
  sweeps : int;
  idle : int;
  busy : int;
  shed : int;
  failed : int;
}

type t = {
  cfg : config;
  target : target;
  ticks : int Atomic.t;
  packs : int Atomic.t;
  merges : int Atomic.t;
  checkpoints : int Atomic.t;
  backups : int Atomic.t;
  sweeps : int Atomic.t;
  idle : int Atomic.t;
  busy : int Atomic.t;
  shed : int Atomic.t;
  failed : int Atomic.t;
  last_backup_tick : int Atomic.t;
  stop_flag : bool Atomic.t;
  mutable worker : unit Domain.t option;
}

let check_config cfg =
  if cfg.pack_min_segments < 1 then invalid_arg "Maintainer: pack_min_segments < 1";
  if cfg.pack_min_depth < 1 then invalid_arg "Maintainer: pack_min_depth < 1";
  if cfg.pack_tag_skew < 0 then invalid_arg "Maintainer: pack_tag_skew < 0";
  if cfg.max_pack_bytes < 1 then invalid_arg "Maintainer: max_pack_bytes < 1";
  if cfg.backup_every < 0 then invalid_arg "Maintainer: backup_every < 0"

let make cfg target =
  check_config cfg;
  {
    cfg;
    target;
    ticks = Atomic.make 0;
    packs = Atomic.make 0;
    merges = Atomic.make 0;
    checkpoints = Atomic.make 0;
    backups = Atomic.make 0;
    sweeps = Atomic.make 0;
    idle = Atomic.make 0;
    busy = Atomic.make 0;
    shed = Atomic.make 0;
    failed = Atomic.make 0;
    last_backup_tick = Atomic.make 0;
    stop_flag = Atomic.make false;
    worker = None;
  }

let of_governor ?(config = default_config) gov = make config (Governed gov)
let of_db ?(config = default_config) db = make config (Direct db)
let config t = t.cfg

let stats t =
  {
    ticks = Atomic.get t.ticks;
    packs = Atomic.get t.packs;
    merges = Atomic.get t.merges;
    checkpoints = Atomic.get t.checkpoints;
    backups = Atomic.get t.backups;
    sweeps = Atomic.get t.sweeps;
    idle = Atomic.get t.idle;
    busy = Atomic.get t.busy;
    shed = Atomic.get t.shed;
    failed = Atomic.get t.failed;
  }

(* One maintenance step on the quiescent live database (under the
   writer lock in governed mode), most urgent debt first:

   1. rolling checkpoint once the WAL outgrows its budget — bounds
      recovery time and truncates the log (snapshot-durable-then-
      truncate, see Wal_store.checkpoint);
   2. incremental pack of the single most fragmented top-level subtree
      over the thresholds — one small epoch-committing, WAL-logged
      write per step, so a crash at any boundary recovers cleanly and
      pinned readers keep their snapshots;
   3. off-path merge of dirty tag-list pending runs (LS debt);
   4. scheduled backup shipping.

   Every step is itself crash-safe, so the scheduler needs no
   recovery logic of its own: whatever step a crash interrupts either
   committed (and replays) or never happened. *)
let step t db =
  let cfg = t.cfg in
  let wal = Option.value ~default:0 (Lazy_db.wal_bytes db) in
  if wal >= cfg.checkpoint_wal_bytes then begin
    Lazy_db.checkpoint db;
    Some (Checkpoint wal)
  end
  else
    match Lazy_db.log db with
    | None -> None
    | Some log -> (
      let fs = Update_log.frag_stats log in
      (* Tag skew: one tag scattered over that many segments degrades
         its structural joins even when overall fragmentation is mild,
         so it lowers the bar to "any multi-segment subtree". *)
      let skew =
        cfg.pack_tag_skew > 0 && fs.Update_log.max_tag_segments >= cfg.pack_tag_skew
      in
      (* O(1) gate before the O(segments) subtree scan: no subtree can
         beat a bound the whole log does not reach. *)
      let pick =
        if
          skew
          || fs.Update_log.live_segments > cfg.pack_min_segments
          || fs.Update_log.er_depth >= cfg.pack_min_depth
        then
          Update_log.fragmented_subtrees log
          |> List.find_opt (fun (s : Update_log.subtree_frag) ->
                 s.Update_log.segments > 1
                 && s.Update_log.len <= cfg.max_pack_bytes
                 && (skew
                    || s.Update_log.segments > cfg.pack_min_segments
                    || s.Update_log.depth >= cfg.pack_min_depth))
        else None
      in
      match pick with
      | Some s ->
        Lazy_db.pack_subtree db ~gp:s.Update_log.gp ~len:s.Update_log.len;
        Some
          (Pack
             {
               gp = s.Update_log.gp;
               len = s.Update_log.len;
               segments = s.Update_log.segments;
               depth = s.Update_log.depth;
             })
      | None ->
        if cfg.merge_dirty_tags > 0 && fs.Update_log.dirty_tags >= cfg.merge_dirty_tags
        then begin
          Update_log.prepare_for_query log;
          Some (Merge_tag_runs fs.Update_log.dirty_tags)
        end
        else (
          match cfg.backup_dir with
          | Some dir
            when cfg.backup_every > 0
                 && Lazy_db.wal_dir db <> None
                 && Atomic.get t.ticks - Atomic.get t.last_backup_tick >= cfg.backup_every
            ->
            let lsn = Lazy_db.backup db ~dir in
            Atomic.set t.last_backup_tick (Atomic.get t.ticks);
            Some (Backup { dir; lsn })
          | _ -> None))

let record t = function
  | Ran (Pack _) -> Atomic.incr t.packs
  | Ran (Merge_tag_runs _) -> Atomic.incr t.merges
  | Ran (Checkpoint _) -> Atomic.incr t.checkpoints
  | Ran (Backup _) -> Atomic.incr t.backups
  | Ran Cache_sweep -> Atomic.incr t.sweeps
  | Idle -> Atomic.incr t.idle
  | Busy -> Atomic.incr t.busy
  | Shed _ -> Atomic.incr t.shed

let tick t =
  Atomic.incr t.ticks;
  let out =
    match t.target with
    | Direct db -> ( match step t db with Some j -> Ran j | None -> Idle)
    | Governed gov -> (
      (* Politeness before admission: with foreground writers in
         flight, don't even queue — the whole point is never competing
         with paying traffic.  The admission bound below still sheds
         the race where a writer arrives right after the probe. *)
      let _, writers = Governor.in_flight gov in
      if writers > 0 then Busy
      else
        match Governor.write gov (fun _guard db -> step t db) with
        | Error r -> Shed r
        | Ok (Some j) -> Ran j
        | Ok None -> (
          (* Write side fully paid down: reclaim retired snapshot and
             cache versions if any linger. *)
          let sdb = Governor.shared gov in
          match Shared_db.mvcc_stats sdb with
          | Some ms when ms.Shared_db.versions > 1 && ms.Shared_db.pinned = 0 ->
            Shared_db.sweep sdb;
            Ran Cache_sweep
          | _ -> Idle))
  in
  record t out;
  out

let rec run_until_idle ?(max_steps = max_int) t =
  if max_steps <= 0 then 0
  else
    match tick t with
    | Ran _ -> 1 + run_until_idle ~max_steps:(max_steps - 1) t
    | Idle | Busy | Shed _ -> 0

let start ?(period_s = 0.05) t =
  if period_s <= 0. then invalid_arg "Maintainer.start: period_s <= 0";
  if t.worker <> None then invalid_arg "Maintainer.start: already running";
  Atomic.set t.stop_flag false;
  t.worker <-
    Some
      (Domain.spawn (fun () ->
           while not (Atomic.get t.stop_flag) do
             (* The loop must survive anything a job throws (a pack
                target raced away, a full disk): count it and keep
                maintaining. *)
             (try ignore (tick t) with _ -> Atomic.incr t.failed);
             Unix.sleepf period_s
           done))

let stop t =
  match t.worker with
  | None -> ()
  | Some d ->
    Atomic.set t.stop_flag true;
    Domain.join d;
    t.worker <- None

let running t = t.worker <> None
