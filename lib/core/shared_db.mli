(** Concurrent access to a lazy XML database — the concurrency
    direction the paper leaves as future work (§6).

    A classic reader–writer discipline over {!Lazy_db}: any number of
    concurrent queries, updates exclusive, writers preferred so a
    steady query stream cannot starve the update feed.  The natural
    fit for the lazy scheme: updates are already tiny (that is the
    paper's point), so the write lock is held briefly even for large
    segment insertions.

    Engines: [LD] (queries are read-only once the log is maintained)
    and [STD].  [LS] is rejected — its deferred sorting makes the
    first query after an update a writer, defeating shared reads. *)

type t

val create :
  ?engine:Lazy_db.engine ->
  ?index_attributes:bool ->
  ?domains:int ->
  ?durability:[ `None | `Wal of string ] ->
  unit ->
  t
(** [domains] and [durability] as in {!Lazy_db.create}: queries of the
    wrapped database fan out over a shared domain pool when
    [domains > 1], and writers append their WAL records under the
    write lock, so the on-disk log always reflects a serializable
    update history.
    @raise Invalid_argument for the [LS] engine. *)

val recover : ?domains:int -> string -> t * Lxu_storage.Recovery.report
(** Restores a crashed durable database (see {!Lazy_db.recover}) and
    wraps it for shared access.
    @raise Invalid_argument if the recovered log is [LS]-mode. *)

val checkpoint : t -> unit
(** Snapshots and rotates the WAL under the write lock.
    @raise Invalid_argument if the database has no WAL. *)

val close : t -> unit
(** Closes the WAL (if any) under the write lock. *)

val insert : t -> gp:int -> string -> unit
(** Exclusive update. *)

val insert_many : t -> (int * string) list -> unit
(** Batched exclusive update: the whole batch is applied — and its WAL
    record group flushed — under one write-lock hold (see
    {!Lazy_db.insert_many}), so readers never observe a partially
    applied batch. *)

val remove : t -> gp:int -> len:int -> unit
(** Exclusive update. *)

val count : t -> ?axis:Lazy_db.axis -> anc:string -> desc:string -> unit -> int
(** Shared query. *)

val path_count : t -> string -> int
(** Shared path-expression query. *)

val read : t -> (Lazy_db.t -> 'a) -> 'a
(** Runs [f] under the read lock.  [f] must not update the database. *)

val write : t -> (Lazy_db.t -> 'a) -> 'a
(** Runs [f] under the write lock. *)

val stats : t -> int * int
(** [(reads_completed, writes_completed)] — exact: the counters are
    atomics, so no completion is ever lost to a racing update. *)
