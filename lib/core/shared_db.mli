(** Concurrent access to a lazy XML database — the concurrency
    direction the paper leaves as future work (§6).

    For the lazy engines this is MVCC with snapshot isolation: every
    committing update publishes an immutable frozen snapshot of the
    update log (see {!Lazy_db.snapshot}), and a reader pins the newest
    published snapshot on entry — an O(1) critical section — then
    evaluates its queries against it {e without holding any lock}.
    Readers never block writers, writers never block readers; writers
    serialize among themselves, preserving the WAL's serializable
    update history exactly as before.  Superseded snapshots are
    retained while any reader is pinned to them and reclaimed when the
    last pin drops, at which point the shared element cache's retired
    column versions are swept too ({!Lxu_seglog.Seg_cache.reclaim}).

    The [STD] engine keeps the previous reader–writer lock (writer
    preference): it relabels its one global interval list in place and
    has no versioned state to snapshot.

    Engines: [LD] and [STD].  [LS] is rejected — its deferred sorting
    makes the first query after an update a writer, defeating shared
    reads (use {!Lazy_db.with_snapshot} directly for single-writer LS
    setups). *)

type t

val create :
  ?engine:Lazy_db.engine ->
  ?index_attributes:bool ->
  ?domains:int ->
  ?durability:[ `None | `Wal of string ] ->
  unit ->
  t
(** [domains] and [durability] as in {!Lazy_db.create}: queries of the
    wrapped database fan out over a shared domain pool when
    [domains > 1], and writers append their WAL records under the
    writer lock, so the on-disk log always reflects a serializable
    update history.
    @raise Invalid_argument for the [LS] engine. *)

val recover : ?domains:int -> string -> t * Lxu_storage.Recovery.report
(** Restores a crashed durable database (see {!Lazy_db.recover}) and
    wraps it for shared access.
    @raise Invalid_argument if the recovered log is [LS]-mode. *)

val checkpoint : t -> unit
(** Snapshots and rotates the WAL under the writer lock.  Commits no
    epoch, so pinned readers are unaffected.
    @raise Invalid_argument if the database has no WAL. *)

val close : t -> unit
(** Closes the WAL (if any) under the writer lock. *)

val insert : t -> gp:int -> string -> unit
(** Serialized update; publishes a new snapshot on success. *)

val insert_many : t -> (int * string) list -> unit
(** Batched serialized update: the whole batch is applied — and its
    WAL record group flushed — under one writer-lock hold (see
    {!Lazy_db.insert_many}) and published as {e one} snapshot version,
    so readers never observe a partially applied batch. *)

val remove : t -> gp:int -> len:int -> unit
(** Serialized update; publishes a new snapshot on success. *)

val count : t -> ?axis:Lazy_db.axis -> anc:string -> desc:string -> unit -> int
(** Lock-free snapshot query. *)

val path_count : t -> string -> int
(** Lock-free snapshot path-expression query. *)

val read : t -> (Lazy_db.t -> 'a) -> 'a
(** Runs [f] against the newest published snapshot, pinned for the
    duration of the call — no lock is held while [f] runs (lazy
    engines).  Every query [f] issues sees the same epoch; updates
    committing meanwhile become visible to {e later} reads only.  [f]
    must not update the database (the snapshot raises
    [Invalid_argument] if it tries).  Under [STD], runs [f] on the
    live database under the read lock as before. *)

val write : t -> (Lazy_db.t -> 'a) -> 'a
(** Runs [f] on the live database under the writer lock.  All epochs
    [f] commits are published as one new snapshot version when it
    returns (also on exception: every committed {!Lazy_db} op is
    all-or-nothing, so whatever prefix committed is consistent and
    becomes visible). *)

(** {2 Explicit snapshot handles}

    {!read} brackets pin/unpin around a callback; these expose the
    same pinning as a first-class value, for multi-step read
    transactions that outlive a callback scope (and for tests that
    park a reader across writer activity). *)

type snapshot

val begin_snapshot : t -> snapshot
(** Pins the newest published snapshot.
    @raise Invalid_argument under [STD]. *)

val snapshot_db : snapshot -> Lazy_db.t
(** The pinned frozen database; valid until {!end_snapshot}.
    @raise Invalid_argument after {!end_snapshot}. *)

val snapshot_epoch : snapshot -> int

val end_snapshot : snapshot -> unit
(** Releases the pin (idempotent).  Dropping the last pin of a
    superseded version reclaims it and sweeps the element cache. *)

val sweep : t -> unit
(** Reclaims superseded unpinned snapshot versions and pushes the
    resulting floor to the shared element cache, dropping retired
    column versions no reader can reach — the maintenance scheduler's
    cache-GC hook.  Reclamation also happens automatically when pins
    drop; this just makes it schedulable.  No-op under [STD]. *)

(** {2 Introspection} *)

val stats : t -> int * int
(** [(reads_completed, writes_completed)] — exact: the counters are
    atomics, so no completion is ever lost to a racing update. *)

val current_epoch : t -> int
(** Epoch of the newest published snapshot (0 under [STD]). *)

type mvcc_stats = {
  versions : int;  (** retained snapshot versions, including current *)
  pinned : int;  (** pins held right now, over all versions *)
  published_epoch : int;
  floor : int;  (** oldest epoch any reader may still pin *)
}

val mvcc_stats : t -> mvcc_stats option
(** [None] under [STD].  At quiescence (no pinned readers),
    [versions = 1] and [pinned = 0] — the leak check the MVCC harness
    asserts. *)
