open Lxu_seglog
open Lxu_labeling

type axis = Desc | Child

type step = { axis : axis; tag : string; predicates : t list }
and t = step list

type strategy = Pairwise | Holistic

(* --- parsing --------------------------------------------------------- *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

exception Bad of string

let parse input =
  let n = String.length input in
  (* Parses a path starting at [i]; inside a predicate parsing stops at
     ']'.  Returns (steps, next position). *)
  let rec path i ~in_pred acc =
    if i >= n || (in_pred && input.[i] = ']') then (List.rev acc, i)
    else begin
      let axis, i =
        if i + 1 < n && input.[i] = '/' && input.[i + 1] = '/' then (Desc, i + 2)
        else if input.[i] = '/' then (Child, i + 1)
        else (Desc, i) (* a bare tag means // *)
      in
      if i < n && input.[i] = '/' then raise (Bad "empty step");
      (* An optional '@' selects attribute subelements. *)
      let j = ref (if i < n && input.[i] = '@' then i + 1 else i) in
      let name_start = !j in
      while !j < n && is_name_char input.[!j] do
        incr j
      done;
      if !j = name_start then
        raise (Bad (Printf.sprintf "expected a tag name at offset %d" i));
      let tag = String.sub input i (!j - i) in
      let rec preds k acc_p =
        if k < n && input.[k] = '[' then begin
          let inner, k' = path (k + 1) ~in_pred:true [] in
          if inner = [] then raise (Bad "empty predicate");
          if k' >= n || input.[k'] <> ']' then raise (Bad "unclosed predicate");
          preds (k' + 1) (inner :: acc_p)
        end
        else (List.rev acc_p, k)
      in
      let predicates, k = preds !j [] in
      path k ~in_pred ({ axis; tag; predicates } :: acc)
    end
  in
  if String.trim input = "" then Error "empty path expression"
  else begin
    match path 0 ~in_pred:false [] with
    | [], _ -> Error "empty path expression"
    | steps, k when k = n -> Ok steps
    | _, k -> Error (Printf.sprintf "unexpected character at offset %d" k)
    | exception Bad msg -> Error msg
  end

let parse_exn s =
  match parse s with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Path_query.parse: %s" msg)

let rec to_string t = String.concat "" (List.map step_to_string t)

and step_to_string { axis; tag; predicates } =
  (match axis with Desc -> "//" | Child -> "/")
  ^ tag
  ^ String.concat "" (List.map (fun p -> "[" ^ to_string p ^ "]") predicates)

(* --- generic evaluation ------------------------------------------------

   One evaluator shared by the lazy-log and interval-store engines,
   parameterized by set operations over "elements of one tag":
   - [all tag]                       every element of [tag]
   - [roots_only tag set]            restrict to document-level elements
   - [up axis ~anc ~desc set]        elements of tag [anc] related by
                                     [axis] to a [desc]-element in [set]
   - [down axis ~anc set ~desc]      elements of tag [desc] related by
                                     [axis] to an [anc]-element in [set]
   - [extents tag set]               global (start, stop) pairs, sorted *)

type 'set ops = {
  all : string -> 'set;
  roots_only : string -> 'set -> 'set;
  up : axis -> anc:string -> desc:string -> 'set -> 'set;
  down : axis -> anc:string -> 'set -> desc:string -> 'set;
  inter : 'set -> 'set -> 'set;
  extents : string -> 'set -> (int * int) list;
}

(* Elements able to head predicate path [steps], with the suffix and
   all nested predicates satisfied below them. *)
let rec pred_head_set ops (steps : t) =
  match steps with
  | [] -> invalid_arg "Path_query: empty predicate"
  | [ s ] -> apply_predicates ops ~tag:s.tag (ops.all s.tag) s.predicates
  | s :: (next :: _ as rest) ->
    let below = pred_head_set ops rest in
    apply_predicates ops ~tag:s.tag
      (ops.up next.axis ~anc:s.tag ~desc:next.tag below)
      s.predicates

(* Restrict [set] (elements of [tag]) to those satisfying every
   predicate path. *)
and apply_predicates ops ~tag set preds =
  List.fold_left
    (fun acc pred ->
      match pred with
      | [] -> acc
      | first :: _ ->
        let heads = pred_head_set ops pred in
        ops.inter acc (ops.up first.axis ~anc:tag ~desc:first.tag heads))
    set preds

let eval_steps ops steps =
  match steps with
  | [] -> invalid_arg "Path_query.eval: empty path"
  | first :: rest ->
    let initial =
      let s = ops.all first.tag in
      let s = if first.axis = Child then ops.roots_only first.tag s else s in
      apply_predicates ops ~tag:first.tag s first.predicates
    in
    let final_tag, final_set =
      List.fold_left
        (fun (prev_tag, survivors) step ->
          let next = ops.down step.axis ~anc:prev_tag survivors ~desc:step.tag in
          (step.tag, apply_predicates ops ~tag:step.tag next step.predicates))
        (first.tag, initial) rest
    in
    ops.extents final_tag final_set

(* --- lazy-log instantiation -------------------------------------------- *)

module Ref_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let log_ops ?guard log =
  let reg = Update_log.registry log in
  (* Folds [f acc ~sid ~start ~stop ~level] over every element of the
     tag, segment by segment through the columnar cache — no key
     records are materialized. *)
  let fold_tag tag f init =
    match Tag_registry.find reg tag with
    | None -> init
    | Some tid ->
      Array.fold_left
        (fun acc (entry : Tag_list.entry) ->
          Lxu_util.Deadline.check_opt guard;
          let sid = entry.Tag_list.sid in
          let c : Seg_cache.cols = Update_log.elements_cols log ~tid ~sid in
          let n = Seg_cache.cols_length c in
          let acc = ref acc in
          for i = 0 to n - 1 do
            acc := f !acc ~sid ~start:c.starts.(i) ~stop:c.stops.(i) ~level:c.levels.(i)
          done;
          !acc)
        init
        (Update_log.segments_for_tag log ~tag)
  in
  let jaxis = function
    | Desc -> Lxu_join.Lazy_join.Descendant
    | Child -> Lxu_join.Lazy_join.Child
  in
  let join axis ~anc ~desc =
    fst (Lxu_join.Lazy_join.run ~axis:(jaxis axis) ?guard log ~anc ~desc ())
  in
  let anc_key (p : Lxu_join.Lazy_join.pair) =
    (p.Lxu_join.Lazy_join.a_sid, p.Lxu_join.Lazy_join.a_start)
  and desc_key (p : Lxu_join.Lazy_join.pair) =
    (p.Lxu_join.Lazy_join.d_sid, p.Lxu_join.Lazy_join.d_start)
  in
  {
    all =
      (fun tag ->
        fold_tag tag
          (fun acc ~sid ~start ~stop:_ ~level:_ -> Ref_set.add (sid, start) acc)
          Ref_set.empty);
    roots_only =
      (fun tag set ->
        fold_tag tag
          (fun acc ~sid ~start ~stop:_ ~level ->
            if level = 0 && Ref_set.mem (sid, start) set then Ref_set.add (sid, start) acc
            else acc)
          Ref_set.empty);
    up =
      (fun axis ~anc ~desc set ->
        Array.fold_left
          (fun acc p ->
            if Ref_set.mem (desc_key p) set then Ref_set.add (anc_key p) acc else acc)
          Ref_set.empty (join axis ~anc ~desc));
    down =
      (fun axis ~anc set ~desc ->
        Array.fold_left
          (fun acc p ->
            if Ref_set.mem (anc_key p) set then Ref_set.add (desc_key p) acc else acc)
          Ref_set.empty (join axis ~anc ~desc));
    inter = Ref_set.inter;
    extents =
      (fun tag set ->
        fold_tag tag
          (fun acc ~sid ~start ~stop ~level:_ ->
            if Ref_set.mem (sid, start) set then begin
              let node = Update_log.node_of_sid log sid in
              Er_node.global_extent_span node ~start ~stop :: acc
            end
            else acc)
          []
        |> List.sort compare);
  }

(* --- interval-store instantiation --------------------------------------- *)

module Int_set = Set.Make (Int)

let store_ops ?guard store =
  let elements tag = Interval_store.elements store ~tag in
  let jaxis = function
    | Desc -> Lxu_join.Stack_tree_desc.Descendant
    | Child -> Lxu_join.Stack_tree_desc.Child
  in
  let join axis ~anc ~desc =
    (* Stack-Tree-Desc itself is not guard-aware; checking per join
       call still bounds a multi-step path between steps. *)
    Lxu_util.Deadline.check_opt guard;
    fst (Lxu_join.Stack_tree_desc.join ~axis:(jaxis axis) ~anc:(elements anc) ~desc:(elements desc) ())
  in
  {
    all =
      (fun tag ->
        Array.fold_left
          (fun acc (l : Interval.t) -> Int_set.add l.Interval.start acc)
          Int_set.empty (elements tag));
    roots_only =
      (fun tag set ->
        Array.fold_left
          (fun acc (l : Interval.t) ->
            if l.Interval.level = 0 && Int_set.mem l.Interval.start set then
              Int_set.add l.Interval.start acc
            else acc)
          Int_set.empty (elements tag));
    up =
      (fun axis ~anc ~desc set ->
        List.fold_left
          (fun acc ((a : Interval.t), (d : Interval.t)) ->
            if Int_set.mem d.Interval.start set then Int_set.add a.Interval.start acc
            else acc)
          Int_set.empty (join axis ~anc ~desc));
    down =
      (fun axis ~anc set ~desc ->
        List.fold_left
          (fun acc ((a : Interval.t), (d : Interval.t)) ->
            if Int_set.mem a.Interval.start set then Int_set.add d.Interval.start acc
            else acc)
          Int_set.empty (join axis ~anc ~desc));
    inter = Int_set.inter;
    extents =
      (fun tag set ->
        Array.to_list (elements tag)
        |> List.filter_map (fun (l : Interval.t) ->
               if Int_set.mem l.Interval.start set then
                 Some (l.Interval.start, l.Interval.stop)
               else None)
        |> List.sort compare);
  }

(* --- holistic evaluation (PathStack; predicate-free paths only) --------- *)

let rec has_predicates steps =
  List.exists (fun s -> s.predicates <> [] || List.exists has_predicates s.predicates) steps

(* Builds a TwigStack query from a predicate path: the spine is a
   chain whose last node is the output; predicates hang off their
   step as extra branches. *)
let twig_of_steps log steps =
  let next_id = ref 0 in
  let stream_of tag = Lxu_join.Std_baseline.global_list log ~tag in
  let edge_of = function Desc -> Lxu_join.Twig_stack.Desc | Child -> Lxu_join.Twig_stack.Child in
  let rec pred_chain (ps : t) =
    match ps with
    | [] -> []
    | s :: rest ->
      let qid = !next_id in
      incr next_id;
      let pred_kids = List.concat_map pred_chain (List.map (fun p -> p) s.predicates) in
      let deeper = pred_chain rest in
      [ { Lxu_join.Twig_stack.qid; stream = stream_of s.tag; edge = edge_of s.axis;
          children = pred_kids @ deeper } ]
  in
  let rec spine (ss : t) =
    match ss with
    | [] -> invalid_arg "Path_query: empty path"
    | [ s ] ->
      let qid = !next_id in
      incr next_id;
      let kids = List.concat_map pred_chain s.predicates in
      ({ Lxu_join.Twig_stack.qid; stream = stream_of s.tag; edge = edge_of s.axis;
         children = kids }, qid)
    | s :: rest ->
      let qid = !next_id in
      incr next_id;
      let kids = List.concat_map pred_chain s.predicates in
      let deeper, out = spine rest in
      ({ Lxu_join.Twig_stack.qid; stream = stream_of s.tag; edge = edge_of s.axis;
         children = kids @ [ deeper ] }, out)
  in
  spine steps

let eval_log_twig log steps =
  let root, out_qid =
    match steps with
    | first :: _ when first.axis = Child ->
      (* Restrict the first stream to document roots. *)
      let root, out = twig_of_steps log steps in
      let stream =
        Array.of_list
          (List.filter (fun (l : Interval.t) -> l.Interval.level = 0)
             (Array.to_list root.Lxu_join.Twig_stack.stream))
      in
      ({ root with Lxu_join.Twig_stack.stream }, out)
    | _ -> twig_of_steps log steps
  in
  Lxu_join.Twig_stack.matches root
  |> List.map (fun row ->
         let iv = row.(out_qid) in
         (iv.Interval.start, iv.Interval.stop))
  |> List.sort_uniq compare

let eval_log_holistic log steps =
  let steps_a = Array.of_list steps in
  let streams =
    Array.map (fun { tag; _ } -> Lxu_join.Std_baseline.global_list log ~tag) steps_a
  in
  (match steps_a.(0).axis with
  | Child ->
    streams.(0) <-
      Array.of_list
        (List.filter
           (fun (l : Interval.t) -> l.Interval.level = 0)
           (Array.to_list streams.(0)))
  | Desc -> ());
  let edges =
    Array.init
      (Array.length steps_a - 1)
      (fun i ->
        match steps_a.(i + 1).axis with
        | Desc -> Lxu_join.Path_stack.Desc
        | Child -> Lxu_join.Path_stack.Child)
  in
  Lxu_join.Path_stack.leaves ~streams ~edges
  |> List.map (fun (l : Interval.t) -> (l.Interval.start, l.Interval.stop))
  |> List.sort compare

let eval ?(strategy = Pairwise) ?guard db steps =
  if steps = [] then invalid_arg "Path_query.eval: empty path";
  Lxu_util.Deadline.check_opt guard;
  match (Lazy_db.log db, strategy) with
  | Some log, Holistic when not (has_predicates steps) ->
    (* The holistic passes run on materialized global lists; the guard
       bounds their stream construction, not the single merge pass. *)
    Update_log.prepare_for_query log;
    Lxu_util.Deadline.check_opt guard;
    eval_log_holistic log steps
  | Some log, Holistic ->
    (* Predicate paths are branching twigs: TwigStack. *)
    Update_log.prepare_for_query log;
    Lxu_util.Deadline.check_opt guard;
    eval_log_twig log steps
  | Some log, Pairwise ->
    Update_log.prepare_for_query log;
    eval_steps (log_ops ?guard log) steps
  | None, _ -> eval_steps (store_ops ?guard (Option.get (Lazy_db.store db))) steps

let eval_string ?strategy ?guard db s = eval ?strategy ?guard db (parse_exn s)
let count ?strategy ?guard db s = List.length (eval_string ?strategy ?guard db s)
