open Lxu_seglog
open Lxu_labeling

type axis = Desc | Child

type step = { axis : axis; tag : string; predicates : t list }
and t = step list

type strategy = Pairwise | Holistic

(* --- parsing --------------------------------------------------------- *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

exception Bad of string

let parse input =
  let n = String.length input in
  (* Parses a path starting at [i]; inside a predicate parsing stops at
     ']'.  Returns (steps, next position). *)
  let rec path i ~in_pred acc =
    if i >= n || (in_pred && input.[i] = ']') then (List.rev acc, i)
    else begin
      let axis, i =
        if i + 1 < n && input.[i] = '/' && input.[i + 1] = '/' then (Desc, i + 2)
        else if input.[i] = '/' then (Child, i + 1)
        else (Desc, i) (* a bare tag means // *)
      in
      if i < n && input.[i] = '/' then raise (Bad "empty step");
      (* An optional '@' selects attribute subelements. *)
      let j = ref (if i < n && input.[i] = '@' then i + 1 else i) in
      let name_start = !j in
      while !j < n && is_name_char input.[!j] do
        incr j
      done;
      if !j = name_start then
        raise (Bad (Printf.sprintf "expected a tag name at offset %d" i));
      let tag = String.sub input i (!j - i) in
      let rec preds k acc_p =
        if k < n && input.[k] = '[' then begin
          let inner, k' = path (k + 1) ~in_pred:true [] in
          if inner = [] then raise (Bad "empty predicate");
          if k' >= n || input.[k'] <> ']' then raise (Bad "unclosed predicate");
          preds (k' + 1) (inner :: acc_p)
        end
        else (List.rev acc_p, k)
      in
      let predicates, k = preds !j [] in
      path k ~in_pred ({ axis; tag; predicates } :: acc)
    end
  in
  if String.trim input = "" then Error "empty path expression"
  else begin
    match path 0 ~in_pred:false [] with
    | [], _ -> Error "empty path expression"
    | steps, k when k = n -> Ok steps
    | _, k -> Error (Printf.sprintf "unexpected character at offset %d" k)
    | exception Bad msg -> Error msg
  end

let parse_exn s =
  match parse s with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Path_query.parse: %s" msg)

let rec to_string t = String.concat "" (List.map step_to_string t)

and step_to_string { axis; tag; predicates } =
  (match axis with Desc -> "//" | Child -> "/")
  ^ tag
  ^ String.concat "" (List.map (fun p -> "[" ^ to_string p ^ "]") predicates)

(* --- generic evaluation ------------------------------------------------

   One evaluator shared by the lazy-log and interval-store engines,
   parameterized by set operations over "elements of one tag":
   - [all tag]                       every element of [tag]
   - [roots_only tag set]            restrict to document-level elements
   - [up axis ~anc ~desc set]        elements of tag [anc] related by
                                     [axis] to a [desc]-element in [set]
   - [down axis ~anc set ~desc]      elements of tag [desc] related by
                                     [axis] to an [anc]-element in [set]
   - [extents tag set]               global (start, stop) pairs, sorted *)

type 'set ops = {
  all : string -> 'set;
  roots_only : string -> 'set -> 'set;
  up : axis -> anc:string -> desc:string -> 'set -> 'set;
  down : axis -> anc:string -> 'set -> desc:string -> 'set;
  inter : 'set -> 'set -> 'set;
  extents : string -> 'set -> (int * int) list;
}

(* Elements able to head predicate path [steps], with the suffix and
   all nested predicates satisfied below them. *)
let rec pred_head_set ops (steps : t) =
  match steps with
  | [] -> invalid_arg "Path_query: empty predicate"
  | [ s ] -> apply_predicates ops ~tag:s.tag (ops.all s.tag) s.predicates
  | s :: (next :: _ as rest) ->
    let below = pred_head_set ops rest in
    apply_predicates ops ~tag:s.tag
      (ops.up next.axis ~anc:s.tag ~desc:next.tag below)
      s.predicates

(* Restrict [set] (elements of [tag]) to those satisfying every
   predicate path. *)
and apply_predicates ops ~tag set preds =
  List.fold_left
    (fun acc pred ->
      match pred with
      | [] -> acc
      | first :: _ ->
        let heads = pred_head_set ops pred in
        ops.inter acc (ops.up first.axis ~anc:tag ~desc:first.tag heads))
    set preds

let eval_steps ops steps =
  match steps with
  | [] -> invalid_arg "Path_query.eval: empty path"
  | first :: rest ->
    let initial =
      let s = ops.all first.tag in
      let s = if first.axis = Child then ops.roots_only first.tag s else s in
      apply_predicates ops ~tag:first.tag s first.predicates
    in
    let final_tag, final_set =
      List.fold_left
        (fun (prev_tag, survivors) step ->
          let next = ops.down step.axis ~anc:prev_tag survivors ~desc:step.tag in
          (step.tag, apply_predicates ops ~tag:step.tag next step.predicates))
        (first.tag, initial) rest
    in
    ops.extents final_tag final_set

(* --- lazy-log instantiation -------------------------------------------- *)

module Ref_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let log_ops ?guard log =
  let reg = Update_log.registry log in
  (* Folds [f acc ~sid ~start ~stop ~level] over every element of the
     tag, segment by segment through the columnar cache — no key
     records are materialized. *)
  let fold_tag tag f init =
    match Tag_registry.find reg tag with
    | None -> init
    | Some tid ->
      Array.fold_left
        (fun acc (entry : Tag_list.entry) ->
          Lxu_util.Deadline.check_opt guard;
          let sid = entry.Tag_list.sid in
          let c : Seg_cache.cols = Update_log.elements_cols log ~tid ~sid in
          let n = Seg_cache.cols_length c in
          let acc = ref acc in
          for i = 0 to n - 1 do
            acc := f !acc ~sid ~start:c.starts.(i) ~stop:c.stops.(i) ~level:c.levels.(i)
          done;
          !acc)
        init
        (Update_log.segments_for_tag log ~tag)
  in
  let jaxis = function
    | Desc -> Lxu_join.Lazy_join.Descendant
    | Child -> Lxu_join.Lazy_join.Child
  in
  let join axis ~anc ~desc =
    fst (Lxu_join.Lazy_join.run ~axis:(jaxis axis) ?guard log ~anc ~desc ())
  in
  let anc_key (p : Lxu_join.Lazy_join.pair) =
    (p.Lxu_join.Lazy_join.a_sid, p.Lxu_join.Lazy_join.a_start)
  and desc_key (p : Lxu_join.Lazy_join.pair) =
    (p.Lxu_join.Lazy_join.d_sid, p.Lxu_join.Lazy_join.d_start)
  in
  {
    all =
      (fun tag ->
        fold_tag tag
          (fun acc ~sid ~start ~stop:_ ~level:_ -> Ref_set.add (sid, start) acc)
          Ref_set.empty);
    roots_only =
      (fun tag set ->
        fold_tag tag
          (fun acc ~sid ~start ~stop:_ ~level ->
            if level = 0 && Ref_set.mem (sid, start) set then Ref_set.add (sid, start) acc
            else acc)
          Ref_set.empty);
    up =
      (fun axis ~anc ~desc set ->
        Array.fold_left
          (fun acc p ->
            if Ref_set.mem (desc_key p) set then Ref_set.add (anc_key p) acc else acc)
          Ref_set.empty (join axis ~anc ~desc));
    down =
      (fun axis ~anc set ~desc ->
        Array.fold_left
          (fun acc p ->
            if Ref_set.mem (anc_key p) set then Ref_set.add (desc_key p) acc else acc)
          Ref_set.empty (join axis ~anc ~desc));
    inter = Ref_set.inter;
    extents =
      (fun tag set ->
        fold_tag tag
          (fun acc ~sid ~start ~stop ~level:_ ->
            if Ref_set.mem (sid, start) set then begin
              let node = Update_log.node_of_sid log sid in
              Er_node.global_extent_span node ~start ~stop :: acc
            end
            else acc)
          []
        |> List.sort compare);
  }

(* --- interval-store instantiation --------------------------------------- *)

module Int_set = Set.Make (Int)

let store_ops ?guard store =
  let elements tag = Interval_store.elements store ~tag in
  let jaxis = function
    | Desc -> Lxu_join.Stack_tree_desc.Descendant
    | Child -> Lxu_join.Stack_tree_desc.Child
  in
  let join axis ~anc ~desc =
    (* Stack-Tree-Desc itself is not guard-aware; checking per join
       call still bounds a multi-step path between steps. *)
    Lxu_util.Deadline.check_opt guard;
    fst (Lxu_join.Stack_tree_desc.join ~axis:(jaxis axis) ~anc:(elements anc) ~desc:(elements desc) ())
  in
  {
    all =
      (fun tag ->
        Array.fold_left
          (fun acc (l : Interval.t) -> Int_set.add l.Interval.start acc)
          Int_set.empty (elements tag));
    roots_only =
      (fun tag set ->
        Array.fold_left
          (fun acc (l : Interval.t) ->
            if l.Interval.level = 0 && Int_set.mem l.Interval.start set then
              Int_set.add l.Interval.start acc
            else acc)
          Int_set.empty (elements tag));
    up =
      (fun axis ~anc ~desc set ->
        List.fold_left
          (fun acc ((a : Interval.t), (d : Interval.t)) ->
            if Int_set.mem d.Interval.start set then Int_set.add a.Interval.start acc
            else acc)
          Int_set.empty (join axis ~anc ~desc));
    down =
      (fun axis ~anc set ~desc ->
        List.fold_left
          (fun acc ((a : Interval.t), (d : Interval.t)) ->
            if Int_set.mem a.Interval.start set then Int_set.add d.Interval.start acc
            else acc)
          Int_set.empty (join axis ~anc ~desc));
    inter = Int_set.inter;
    extents =
      (fun tag set ->
        Array.to_list (elements tag)
        |> List.filter_map (fun (l : Interval.t) ->
               if Int_set.mem l.Interval.start set then
                 Some (l.Interval.start, l.Interval.stop)
               else None)
        |> List.sort compare);
  }

(* --- holistic evaluation (PathStack; predicate-free paths only) --------- *)

let rec has_predicates steps =
  List.exists (fun s -> s.predicates <> [] || List.exists has_predicates s.predicates) steps

(* Builds a TwigStack query from a predicate path: the spine is a
   chain whose last node is the output; predicates hang off their
   step as extra branches. *)
let twig_of_steps log steps =
  let next_id = ref 0 in
  let stream_of tag = Lxu_join.Std_baseline.global_list log ~tag in
  let edge_of = function Desc -> Lxu_join.Twig_stack.Desc | Child -> Lxu_join.Twig_stack.Child in
  let rec pred_chain (ps : t) =
    match ps with
    | [] -> []
    | s :: rest ->
      let qid = !next_id in
      incr next_id;
      let pred_kids = List.concat_map pred_chain (List.map (fun p -> p) s.predicates) in
      let deeper = pred_chain rest in
      [ { Lxu_join.Twig_stack.qid; stream = stream_of s.tag; edge = edge_of s.axis;
          children = pred_kids @ deeper } ]
  in
  let rec spine (ss : t) =
    match ss with
    | [] -> invalid_arg "Path_query: empty path"
    | [ s ] ->
      let qid = !next_id in
      incr next_id;
      let kids = List.concat_map pred_chain s.predicates in
      ({ Lxu_join.Twig_stack.qid; stream = stream_of s.tag; edge = edge_of s.axis;
         children = kids }, qid)
    | s :: rest ->
      let qid = !next_id in
      incr next_id;
      let kids = List.concat_map pred_chain s.predicates in
      let deeper, out = spine rest in
      ({ Lxu_join.Twig_stack.qid; stream = stream_of s.tag; edge = edge_of s.axis;
         children = kids @ [ deeper ] }, out)
  in
  spine steps

let eval_log_twig log steps =
  let root, out_qid =
    match steps with
    | first :: _ when first.axis = Child ->
      (* Restrict the first stream to document roots. *)
      let root, out = twig_of_steps log steps in
      let stream =
        Array.of_list
          (List.filter (fun (l : Interval.t) -> l.Interval.level = 0)
             (Array.to_list root.Lxu_join.Twig_stack.stream))
      in
      ({ root with Lxu_join.Twig_stack.stream }, out)
    | _ -> twig_of_steps log steps
  in
  Lxu_join.Twig_stack.matches root
  |> List.map (fun row ->
         let iv = row.(out_qid) in
         (iv.Interval.start, iv.Interval.stop))
  |> List.sort_uniq compare

let eval_log_holistic log steps =
  let steps_a = Array.of_list steps in
  let streams =
    Array.map (fun { tag; _ } -> Lxu_join.Std_baseline.global_list log ~tag) steps_a
  in
  (match steps_a.(0).axis with
  | Child ->
    streams.(0) <-
      Array.of_list
        (List.filter
           (fun (l : Interval.t) -> l.Interval.level = 0)
           (Array.to_list streams.(0)))
  | Desc -> ());
  let edges =
    Array.init
      (Array.length steps_a - 1)
      (fun i ->
        match steps_a.(i + 1).axis with
        | Desc -> Lxu_join.Path_stack.Desc
        | Child -> Lxu_join.Path_stack.Child)
  in
  Lxu_join.Path_stack.leaves ~streams ~edges
  |> List.map (fun (l : Interval.t) -> (l.Interval.start, l.Interval.stop))
  |> List.sort compare

(* --- planned evaluation (lib/plan) -------------------------------------- *)

module Sid_set = Set.Make (Int)

let chain_of_steps (steps : t) =
  let arr = Array.of_list steps in
  {
    Lxu_plan.Plan.tags = Array.map (fun s -> s.tag) arr;
    axes =
      Array.map
        (fun s ->
          match s.axis with Desc -> Lxu_plan.Plan.Desc | Child -> Lxu_plan.Plan.Child)
        arr;
    has_preds = has_predicates steps;
  }

exception Empty_result

(* Executes an [Ordered] plan: anchor at the seed step, climb towards
   the head restricting each join's descendant side to the current
   frontier's segments (plus synopsis ancestor-tag evidence — selective
   Proposition 3), then descend towards the tail replaying the cached
   up-phase pairs through the seed and running ancestor-restricted
   joins past it.  The final per-step survivor sets equal naive
   left-to-right evaluation's: the up phase's extra
   "reaches-the-seed-downward" constraint vanishes by the time the seed
   is crossed, and only the final step's extents are returned — so
   results are fingerprint-identical to the naive order.

   [actual_step]/[actual_pairs] of the plan are filled in as execution
   proceeds (the explain output's actuals). *)
let eval_log_planned ?guard ?pool log (steps : t) (o : Lxu_plan.Plan.ordered) =
  let ops = log_ops ?guard log in
  let stepsa = Array.of_list steps in
  let n = Array.length stepsa in
  let syn = Update_log.synopsis log in
  let reg = Update_log.registry log in
  let k = o.Lxu_plan.Plan.seed in
  let anc_key (p : Lxu_join.Lazy_join.pair) =
    (p.Lxu_join.Lazy_join.a_sid, p.Lxu_join.Lazy_join.a_start)
  and desc_key (p : Lxu_join.Lazy_join.pair) =
    (p.Lxu_join.Lazy_join.d_sid, p.Lxu_join.Lazy_join.d_start)
  in
  let segs_of set = Ref_set.fold (fun (sid, _) acc -> Sid_set.add sid acc) set Sid_set.empty in
  (* Summary evidence: may any element of the segment have an ancestor
     tagged like step [anc_i]?  [false] proves no pair can come out of
     the segment, so it is skipped before any element access. *)
  let prop3 anc_i =
    match Tag_registry.find reg stepsa.(anc_i).tag with
    | None -> fun _ -> true
    | Some tid -> fun sid -> Path_synopsis.may_have_ancestor syn ~sid ~tid
  in
  let spec_for dir anc_i =
    Array.fold_left
      (fun acc (js : Lxu_plan.Plan.join_spec) ->
        if js.Lxu_plan.Plan.dir = dir && js.Lxu_plan.Plan.anc = anc_i then Some js else acc)
      None o.Lxu_plan.Plan.joins
  in
  let run_join ~dir ~anc_i ~desc_i ~a_filter ~d_filter =
    Lxu_util.Deadline.check_opt guard;
    let spec = spec_for dir anc_i in
    let push_filter, trim_top =
      match spec with
      | Some s -> (s.Lxu_plan.Plan.push_filter, s.Lxu_plan.Plan.trim_top)
      | None -> (true, true)
    in
    let jaxis =
      match stepsa.(desc_i).axis with
      | Desc -> Lxu_join.Lazy_join.Descendant
      | Child -> Lxu_join.Lazy_join.Child
    in
    let pairs =
      fst
        (Lxu_join.Lazy_join.run ~axis:jaxis ~push_filter ~trim_top ?a_filter ?d_filter
           ?pool ?guard log ~anc:stepsa.(anc_i).tag ~desc:stepsa.(desc_i).tag ())
    in
    (match spec with Some s -> s.Lxu_plan.Plan.actual_pairs <- Array.length pairs | None -> ());
    pairs
  in
  let record i set = o.Lxu_plan.Plan.actual_step.(i) <- Ref_set.cardinal set in
  try
    (* Spine-match estimates are exact upper bounds (predicates only
       shrink sets), so a zero at the tail is a synopsis proof of
       emptiness: nothing to execute. *)
    if o.Lxu_plan.Plan.est_step.(n - 1) = 0 then raise Empty_result;
    (* Seed set. *)
    let a_sets = Array.make n Ref_set.empty in
    let init =
      let s = ops.all stepsa.(k).tag in
      let s = if k = 0 && stepsa.(0).axis = Child then ops.roots_only stepsa.(0).tag s else s in
      apply_predicates ops ~tag:stepsa.(k).tag s stepsa.(k).predicates
    in
    a_sets.(k) <- init;
    (* Up phase: frontier sets A_i (elements of step i with a full
       predicate-checked chain down to the seed), with the join pairs
       cached for replay on the way back down. *)
    let cached = Array.make (max 1 (n - 1)) [||] in
    for i = k - 1 downto 0 do
      let above = a_sets.(i + 1) in
      if Ref_set.is_empty above then raise Empty_result;
      let restr = segs_of above in
      let p3 = prop3 i in
      let d_filter (e : Tag_list.entry) =
        Sid_set.mem e.Tag_list.sid restr && p3 e.Tag_list.sid
      in
      let pairs =
        run_join ~dir:`Up ~anc_i:i ~desc_i:(i + 1) ~a_filter:None ~d_filter:(Some d_filter)
      in
      let kept =
        Array.of_list
          (List.filter (fun p -> Ref_set.mem (desc_key p) above) (Array.to_list pairs))
      in
      cached.(i) <- kept;
      let aset =
        Array.fold_left (fun acc p -> Ref_set.add (anc_key p) acc) Ref_set.empty kept
      in
      let aset =
        if i = 0 && stepsa.(0).axis = Child then ops.roots_only stepsa.(0).tag aset else aset
      in
      a_sets.(i) <- apply_predicates ops ~tag:stepsa.(i).tag aset stepsa.(i).predicates
    done;
    (* Down phase. *)
    let b = ref a_sets.(0) in
    record 0 !b;
    for i = 1 to n - 1 do
      if Ref_set.is_empty !b then raise Empty_result;
      let prev = !b in
      let next =
        if i <= k then
          (* Through the seed: replay the cached pairs — descendants
             are already inside the predicate-checked frontier A_i, so
             no join runs and no predicates re-apply. *)
          Array.fold_left
            (fun acc p ->
              if Ref_set.mem (anc_key p) prev then Ref_set.add (desc_key p) acc else acc)
            Ref_set.empty cached.(i - 1)
        else begin
          let restr = segs_of prev in
          let a_filter (e : Tag_list.entry) = Sid_set.mem e.Tag_list.sid restr in
          let p3 = prop3 (i - 1) in
          let d_filter (e : Tag_list.entry) = p3 e.Tag_list.sid in
          let pairs =
            run_join ~dir:`Down ~anc_i:(i - 1) ~desc_i:i ~a_filter:(Some a_filter)
              ~d_filter:(Some d_filter)
          in
          let s =
            Array.fold_left
              (fun acc p ->
                if Ref_set.mem (anc_key p) prev then Ref_set.add (desc_key p) acc else acc)
              Ref_set.empty pairs
          in
          apply_predicates ops ~tag:stepsa.(i).tag s stepsa.(i).predicates
        end
      in
      b := next;
      record i !b
    done;
    ops.extents stepsa.(n - 1).tag !b
  with Empty_result ->
    Array.iteri (fun i v -> if v < 0 then o.Lxu_plan.Plan.actual_step.(i) <- 0)
      o.Lxu_plan.Plan.actual_step;
    []

(* Resolves the requested planning mode against the [LXU_PLAN] escape
   hatch: [LXU_PLAN=naive] preserves strict left-to-right evaluation
   regardless of the caller. *)
let resolve_plan_mode plan =
  match Sys.getenv_opt "LXU_PLAN" with Some "naive" -> `Naive | _ -> plan

(* Cost-based plan for a spine over a log engine, and its execution.
   Holistic auto-selection stays conservative (wide margin in the cost
   model) and is disabled on frozen snapshots. *)
let choose_plan ~force_seed log steps =
  Lxu_plan.Plan.choose ?force_seed
    ~allow_holistic:(not (Update_log.is_frozen log))
    ~log (chain_of_steps steps)

let eval_log_plan ?guard ?pool log steps plan =
  match plan with
  | Lxu_plan.Plan.Naive -> eval_steps (log_ops ?guard log) steps
  | Lxu_plan.Plan.Holistic _ ->
    (* Plans are only chosen for predicate-free chains here; sort_uniq
       normalizes the leaf list to the extents fingerprint. *)
    List.sort_uniq compare (eval_log_holistic log steps)
  | Lxu_plan.Plan.Ordered o -> eval_log_planned ?guard ?pool log steps o

let eval ?(strategy = Pairwise) ?(plan = `Auto) ?guard db steps =
  if steps = [] then invalid_arg "Path_query.eval: empty path";
  Lxu_util.Deadline.check_opt guard;
  match (Lazy_db.log db, strategy) with
  | Some log, Holistic when not (has_predicates steps) ->
    (* The holistic passes run on materialized global lists; the guard
       bounds their stream construction, not the single merge pass. *)
    Update_log.prepare_for_query log;
    Lxu_util.Deadline.check_opt guard;
    eval_log_holistic log steps
  | Some log, Holistic ->
    (* Predicate paths are branching twigs: TwigStack. *)
    Update_log.prepare_for_query log;
    Lxu_util.Deadline.check_opt guard;
    eval_log_twig log steps
  | Some log, Pairwise -> begin
    Update_log.prepare_for_query log;
    match resolve_plan_mode plan with
    | `Naive -> eval_steps (log_ops ?guard log) steps
    | (`Auto | `Seed _) as m ->
      let force_seed = match m with `Seed s -> Some s | `Auto -> None in
      eval_log_plan ?guard ?pool:(Lazy_db.query_pool db) log steps
        (choose_plan ~force_seed log steps)
  end
  | None, _ -> eval_steps (store_ops ?guard (Option.get (Lazy_db.store db))) steps

let explain ?guard db steps =
  if steps = [] then invalid_arg "Path_query.explain: empty path";
  match Lazy_db.log db with
  | None ->
    ("plan: STD fallback (interval store, naive left-to-right)", eval ?guard db steps)
  | Some log -> begin
    Update_log.prepare_for_query log;
    match resolve_plan_mode `Auto with
    | `Naive ->
      ("plan: naive (LXU_PLAN=naive)", eval_steps (log_ops ?guard log) steps)
    | _ ->
      let plan = choose_plan ~force_seed:None log steps in
      (* Execute first: the ordered plan's actual cardinalities are
         filled in by the run, so the rendering carries est vs actual. *)
      let results = eval_log_plan ?guard ?pool:(Lazy_db.query_pool db) log steps plan in
      (Lxu_plan.Plan.explain (chain_of_steps steps) plan, results)
  end

let eval_string ?strategy ?plan ?guard db s = eval ?strategy ?plan ?guard db (parse_exn s)
let count ?strategy ?plan ?guard db s = List.length (eval_string ?strategy ?plan ?guard db s)
