(** Autonomous self-maintenance: a background scheduler that pays down
    the lazy scheme's accumulated update debt — deep ER chains, dirty
    tag-list pending runs, a growing WAL — in small crash-safe steps.

    The paper trades update speed for debt the "maintenance hours"
    operations repay; this module runs those hours continuously, in
    the gaps of live traffic.  Each {!tick} performs {e at most one}
    job, chosen from the {!Lxu_seglog.Update_log.frag_stats}
    fragmentation counters:

    {ul
    {- {b Rolling checkpoint} once the WAL outgrows
       [checkpoint_wal_bytes]: snapshot + atomic rename + directory
       fsync, then log rotation (see {!Lxu_storage.Wal_store}) —
       bounds recovery time and disk growth.}
    {- {b Incremental auto-pack}: the single most fragmented top-level
       subtree over the thresholds is re-indexed as one segment via
       {!Lazy_db.pack_subtree} — a normal epoch-committing, WAL-logged
       write, so a crash at any step boundary recovers cleanly and
       pinned MVCC readers are never disturbed.  One subtree per tick
       keeps each writer-lock hold small.}
    {- {b Tag-list merging}: dirty pending runs are merged off the
       query path ([Lazy_static] debt).}
    {- {b Scheduled backup}: ships snapshot + WAL to [backup_dir]
       every [backup_every] ticks; any committed state of the backup
       is reconstructible with {!Lazy_db.restore_to}.}
    {- {b Cache sweep}: retired MVCC snapshot and element-cache
       versions are reclaimed when nothing pins them
       ({!Shared_db.sweep}).}}

    In governed mode every job runs through {!Governor.write}, so
    maintenance is bounded by the same admission as live traffic and
    is {e shed first} under load: a tick that finds foreground writers
    in flight defers ({!outcome.Busy}), and one that loses the
    admission race is rejected like any other writer
    ({!outcome.Shed}).  Jobs need no recovery logic of their own —
    each is individually crash-safe, so whatever step a crash
    interrupts either committed (and replays from the WAL) or never
    happened; the chaos harness in [test/harness/maint_harness.ml]
    kills the store at every step boundary to enforce exactly this. *)

type config = {
  pack_min_segments : int;
      (** pack a subtree holding more live segments than this *)
  pack_min_depth : int;  (** ... or an ER chain at least this deep *)
  pack_tag_skew : int;
      (** when some single tag's list spans at least this many
          segments ({!Lxu_seglog.Update_log.frag_stats}'
          [max_tag_segments]), treat the log as fragmented and accept
          any multi-segment subtree — structural joins over that tag
          degrade even when overall fragmentation is mild
          ([0] disables the trigger) *)
  max_pack_bytes : int;
      (** never pack an extent larger than this — keeps each step
          (and its writer-lock hold) small *)
  checkpoint_wal_bytes : int;
      (** roll a checkpoint once the live WAL reaches this size *)
  merge_dirty_tags : int;
      (** merge pending runs once this many tag lists are dirty
          ([<= 0] disables the job) *)
  backup_every : int;  (** ship a backup every N ticks (0 = never) *)
  backup_dir : string option;
}

val default_config : config
(** [{ pack_min_segments = 8; pack_min_depth = 4; pack_tag_skew = 0;
      max_pack_bytes = 1 lsl 20; checkpoint_wal_bytes = 1 lsl 20;
      merge_dirty_tags = 16; backup_every = 0; backup_dir = None }] *)

type job =
  | Pack of { gp : int; len : int; segments : int; depth : int }
      (** one subtree re-indexed; [segments]/[depth] are its
          pre-pack fragmentation *)
  | Merge_tag_runs of int  (** dirty tag lists merged *)
  | Checkpoint of int  (** WAL size (bytes) that triggered the roll *)
  | Backup of { dir : string; lsn : int }
      (** shipped through committed LSN [lsn] *)
  | Cache_sweep

type outcome =
  | Ran of job
  | Idle  (** no debt over any threshold *)
  | Busy  (** foreground writers in flight; deferred without queueing *)
  | Shed of Governor.rejection  (** lost the admission race *)

val job_to_string : job -> string
val outcome_to_string : outcome -> string

type t

val of_governor : ?config:config -> Governor.t -> t
(** Maintenance under admission: every job runs inside
    {!Governor.write} on the live database, so it serializes with —
    and is shed in favour of — foreground traffic.
    @raise Invalid_argument on a non-positive config bound. *)

val of_db : ?config:config -> Lazy_db.t -> t
(** Direct single-owner mode (no governor): jobs run straight on the
    database.  The mode for [Lazy_static] stores and the [lazyxml
    compact] CLI; the caller owns all synchronization. *)

val config : t -> config

val tick : t -> outcome
(** Runs at most one maintenance job and reports what happened.  Safe
    to call from any domain in governed mode.  Exceptions a job
    raises propagate to the caller (the background loop of {!start}
    catches and counts them instead). *)

val run_until_idle : ?max_steps:int -> t -> int
(** Ticks until the store reports no remaining debt ([Idle] — or
    [Busy]/[Shed], which a foreground-quiet caller never sees) and
    returns the number of jobs run.  The CLI [compact] loop. *)

val start : ?period_s:float -> t -> unit
(** Spawns the background loop: one dedicated domain ticking every
    [period_s] (default 0.05s).  The loop defers to live traffic via
    the governed-mode gauges rather than by sharing the query pool —
    a long-lived loop would monopolize a {!Lxu_util.Domain_pool}
    task slot, so it gets its own domain and yields through
    admission instead.  Exceptions thrown by jobs are counted in
    {!stats}[.failed] and the loop continues.
    @raise Invalid_argument if already running or [period_s <= 0]. *)

val stop : t -> unit
(** Signals the background loop and joins its domain; idempotent.
    A job in flight completes first — jobs are never killed
    mid-step. *)

val running : t -> bool

type stats = {
  ticks : int;
  packs : int;
  merges : int;
  checkpoints : int;
  backups : int;
  sweeps : int;
  idle : int;
  busy : int;
  shed : int;
  failed : int;  (** jobs that raised (background loop only) *)
}

val stats : t -> stats
