(* MVCC for the lazy engines: readers pin the newest published
   snapshot (O(1) under [vlock], never held during a query), writers
   serialize among themselves under [wlock] and publish a fresh frozen
   snapshot after every committing call.  The STD engine keeps the old
   reader–writer lock: it relabels globally in place and has no
   versioned state to snapshot. *)

type version = {
  v_epoch : int;
  v_db : Lazy_db.t;  (* frozen snapshot ([Lazy_db.snapshot]) *)
  mutable v_pins : int;  (* readers currently inside [f v_db] *)
}

type mvcc = {
  m_db : Lazy_db.t;  (* the live database; touched only under [wlock] *)
  wlock : Mutex.t;  (* writer–writer serialization *)
  vlock : Mutex.t;  (* version table; every hold is O(versions) *)
  mutable current : version;  (* newest published snapshot *)
  mutable versions : version list;  (* retained versions, newest first *)
  mutable floor : int;  (* last reclamation floor pushed to the cache *)
}

(* Classic rw-lock with writer preference — the pre-MVCC scheme, kept
   for STD. *)
type locked = {
  l_db : Lazy_db.t;
  lock : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable active_readers : int;
  mutable writer_active : bool;
  mutable writers_waiting : int;
}

type mode = Mvcc of mvcc | Locked of locked

type t = {
  mode : mode;
  reads_done : int Atomic.t;
  writes_done : int Atomic.t;
}

type mvcc_stats = {
  versions : int;
  pinned : int;
  published_epoch : int;
  floor : int;
}

let wrap db =
  let mode =
    match Lazy_db.engine db with
    | Lazy_db.STD ->
      Locked
        {
          l_db = db;
          lock = Mutex.create ();
          can_read = Condition.create ();
          can_write = Condition.create ();
          active_readers = 0;
          writer_active = false;
          writers_waiting = 0;
        }
    | Lazy_db.LD | Lazy_db.LS ->
      let v0 = { v_epoch = Lazy_db.epoch db; v_db = Lazy_db.snapshot db; v_pins = 0 } in
      let m =
        {
          m_db = db;
          wlock = Mutex.create ();
          vlock = Mutex.create ();
          current = v0;
          versions = [ v0 ];
          floor = Lazy_db.epoch db;
        }
      in
      (* Lower the cache floor from its standalone-log default
         ([latest], eager stale dropping) to the pinnable range right
         away, so retired versions survive for pinned readers. *)
      (match Lazy_db.log db with
      | Some log -> Lxu_seglog.Seg_cache.reclaim (Lxu_seglog.Update_log.cache log) ~floor:m.floor
      | None -> ());
      Mvcc m
  in
  { mode; reads_done = Atomic.make 0; writes_done = Atomic.make 0 }

let create ?(engine = Lazy_db.LD) ?index_attributes ?domains ?durability () =
  if engine = Lazy_db.LS then
    invalid_arg "Shared_db.create: LS queries mutate the log; use LD";
  wrap (Lazy_db.create ~engine ?index_attributes ?domains ?durability ())

(* --- MVCC internals -------------------------------------------------- *)

(* With [vlock] held: drop unpinned superseded versions, then push the
   new floor — the oldest epoch any reader can still be pinned at — to
   the live cache so it reclaims the retired column snapshots nobody
   can reach.  New readers only ever pin [current], so the floor is
   the min over pinned versions and [current] itself. *)
let reclaim_locked (m : mvcc) =
  m.versions <-
    List.filter (fun v -> v == m.current || v.v_pins > 0) m.versions;
  let floor =
    List.fold_left (fun acc v -> min acc v.v_epoch) m.current.v_epoch m.versions
  in
  m.floor <- floor;
  (* Push unconditionally: rebuild / auto-pack install a fresh cache
     whose floor starts back at [Seg_cache.latest] (the standalone-log
     default), and the sweep is O(1) when nothing is retired. *)
  match Lazy_db.log m.m_db with
  | Some log -> Lxu_seglog.Seg_cache.reclaim (Lxu_seglog.Update_log.cache log) ~floor
  | None -> ()

let pin (m : mvcc) =
  Mutex.lock m.vlock;
  let v = m.current in
  v.v_pins <- v.v_pins + 1;
  Mutex.unlock m.vlock;
  v

let unpin m v =
  Mutex.lock m.vlock;
  v.v_pins <- v.v_pins - 1;
  reclaim_locked m;
  Mutex.unlock m.vlock

(* With [wlock] held and the live database quiescent: freeze it and
   install the snapshot as [current].  Freezing happens outside
   [vlock] — only the installation is a critical section. *)
let publish_locked (m : mvcc) =
  let v =
    { v_epoch = Lazy_db.epoch m.m_db; v_db = Lazy_db.snapshot m.m_db; v_pins = 0 }
  in
  Mutex.lock m.vlock;
  m.current <- v;
  m.versions <- v :: m.versions;
  reclaim_locked m;
  Mutex.unlock m.vlock

(* --- the shared surface ---------------------------------------------- *)

let read t f =
  match t.mode with
  | Mvcc m ->
    let v = pin m in
    Fun.protect
      ~finally:(fun () ->
        Atomic.incr t.reads_done;
        unpin m v)
      (fun () -> f v.v_db)
  | Locked l ->
    Mutex.lock l.lock;
    (* Writer preference: an arriving reader also yields to queued
       writers. *)
    while l.writer_active || l.writers_waiting > 0 do
      Condition.wait l.can_read l.lock
    done;
    l.active_readers <- l.active_readers + 1;
    Mutex.unlock l.lock;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock l.lock;
        l.active_readers <- l.active_readers - 1;
        Atomic.incr t.reads_done;
        if l.active_readers = 0 then Condition.signal l.can_write;
        Mutex.unlock l.lock)
      (fun () -> f l.l_db)

let write t f =
  match t.mode with
  | Mvcc m ->
    Mutex.lock m.wlock;
    let before = Lazy_db.epoch m.m_db in
    Fun.protect
      ~finally:(fun () ->
        (* Publish whatever committed, even when [f] raised after some
           epochs went through (each Lazy_db op is all-or-nothing, so
           the live state is consistent at every op boundary). *)
        if Lazy_db.epoch m.m_db <> before then publish_locked m;
        Atomic.incr t.writes_done;
        Mutex.unlock m.wlock)
      (fun () -> f m.m_db)
  | Locked l ->
    Mutex.lock l.lock;
    l.writers_waiting <- l.writers_waiting + 1;
    while l.writer_active || l.active_readers > 0 do
      Condition.wait l.can_write l.lock
    done;
    l.writers_waiting <- l.writers_waiting - 1;
    l.writer_active <- true;
    Mutex.unlock l.lock;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock l.lock;
        l.writer_active <- false;
        Atomic.incr t.writes_done;
        if l.writers_waiting > 0 then Condition.signal l.can_write
        else Condition.broadcast l.can_read;
        Mutex.unlock l.lock)
      (fun () -> f l.l_db)

(* --- explicit snapshot handles --------------------------------------- *)

type snapshot = { s_owner : mvcc; s_version : version; mutable s_ended : bool }

let begin_snapshot t =
  match t.mode with
  | Locked _ -> invalid_arg "Shared_db.begin_snapshot: the STD engine keeps no versioned state"
  | Mvcc m -> { s_owner = m; s_version = pin m; s_ended = false }

let end_snapshot s =
  if not s.s_ended then begin
    s.s_ended <- true;
    unpin s.s_owner s.s_version
  end

let snapshot_db s =
  if s.s_ended then invalid_arg "Shared_db.snapshot_db: snapshot already ended";
  s.s_version.v_db

let snapshot_epoch s = s.s_version.v_epoch

(* --------------------------------------------------------------------- *)

let recover ?domains dir =
  let db, report = Lazy_db.recover ?domains dir in
  if Lazy_db.engine db = Lazy_db.LS then
    invalid_arg "Shared_db.recover: LS queries mutate the log; use LD";
  (wrap db, report)

let insert t ~gp text = write t (fun db -> Lazy_db.insert db ~gp text)
let insert_many t edits = write t (fun db -> Lazy_db.insert_many db edits)
let remove t ~gp ~len = write t (fun db -> Lazy_db.remove db ~gp ~len)

(* WAL appends happen inside Lazy_db's update path, so they are
   already serialized under the writer lock; checkpoint takes the same
   lock to snapshot a quiescent log.  Neither commits an epoch, so no
   new version is published. *)
let checkpoint t = write t Lazy_db.checkpoint
let close t = write t Lazy_db.close
let count t ?axis ~anc ~desc () = read t (fun db -> Lazy_db.count db ?axis ~anc ~desc ())
let path_count t path = read t (fun db -> Path_query.count db path)

let sweep t =
  match t.mode with
  | Locked _ -> ()
  | Mvcc m ->
    Mutex.lock m.vlock;
    reclaim_locked m;
    Mutex.unlock m.vlock

let stats t = (Atomic.get t.reads_done, Atomic.get t.writes_done)

let current_epoch t =
  match t.mode with
  | Mvcc m ->
    Mutex.lock m.vlock;
    let e = m.current.v_epoch in
    Mutex.unlock m.vlock;
    e
  | Locked _ -> 0

let mvcc_stats t =
  match t.mode with
  | Locked _ -> None
  | Mvcc m ->
    Mutex.lock m.vlock;
    let s =
      {
        versions = List.length m.versions;
        pinned = List.fold_left (fun acc v -> acc + v.v_pins) 0 m.versions;
        published_epoch = m.current.v_epoch;
        floor = m.floor;
      }
    in
    Mutex.unlock m.vlock;
    Some s
