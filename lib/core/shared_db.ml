type t = {
  db : Lazy_db.t;
  lock : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable active_readers : int;
  mutable writer_active : bool;
  mutable writers_waiting : int;
  reads_done : int Atomic.t;
  writes_done : int Atomic.t;
}

let wrap db =
  {
    db;
    lock = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    active_readers = 0;
    writer_active = false;
    writers_waiting = 0;
    reads_done = Atomic.make 0;
    writes_done = Atomic.make 0;
  }

let create ?(engine = Lazy_db.LD) ?index_attributes ?domains ?durability () =
  if engine = Lazy_db.LS then
    invalid_arg "Shared_db.create: LS queries mutate the log; use LD";
  wrap (Lazy_db.create ~engine ?index_attributes ?domains ?durability ())

let read t f =
  Mutex.lock t.lock;
  (* Writer preference: an arriving reader also yields to queued
     writers. *)
  while t.writer_active || t.writers_waiting > 0 do
    Condition.wait t.can_read t.lock
  done;
  t.active_readers <- t.active_readers + 1;
  Mutex.unlock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.lock;
      t.active_readers <- t.active_readers - 1;
      Atomic.incr t.reads_done;
      if t.active_readers = 0 then Condition.signal t.can_write;
      Mutex.unlock t.lock)
    (fun () -> f t.db)

let write t f =
  Mutex.lock t.lock;
  t.writers_waiting <- t.writers_waiting + 1;
  while t.writer_active || t.active_readers > 0 do
    Condition.wait t.can_write t.lock
  done;
  t.writers_waiting <- t.writers_waiting - 1;
  t.writer_active <- true;
  Mutex.unlock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.lock;
      t.writer_active <- false;
      Atomic.incr t.writes_done;
      if t.writers_waiting > 0 then Condition.signal t.can_write
      else Condition.broadcast t.can_read;
      Mutex.unlock t.lock)
    (fun () -> f t.db)

let recover ?domains dir =
  let db, report = Lazy_db.recover ?domains dir in
  if Lazy_db.engine db = Lazy_db.LS then
    invalid_arg "Shared_db.recover: LS queries mutate the log; use LD";
  (wrap db, report)

let insert t ~gp text = write t (fun db -> Lazy_db.insert db ~gp text)
let insert_many t edits = write t (fun db -> Lazy_db.insert_many db edits)
let remove t ~gp ~len = write t (fun db -> Lazy_db.remove db ~gp ~len)

(* WAL appends happen inside Lazy_db's update path, so they are
   already serialized under the write lock; checkpoint takes the same
   lock to snapshot a quiescent log. *)
let checkpoint t = write t Lazy_db.checkpoint
let close t = write t Lazy_db.close
let count t ?axis ~anc ~desc () = read t (fun db -> Lazy_db.count db ?axis ~anc ~desc ())
let path_count t path = read t (fun db -> Path_query.count db path)

let stats t = (Atomic.get t.reads_done, Atomic.get t.writes_done)
