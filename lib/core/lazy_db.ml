open Lxu_seglog
open Lxu_labeling

type engine = LD | LS | STD
type axis = Descendant | Child

type backend = Log of Update_log.t | Store of Interval_store.t

type t = {
  engine : engine;
  mutable backend : backend;
  pack_threshold : int option;
  domains : int;
  mutable pool : Lxu_util.Domain_pool.t option;  (* created on first parallel query *)
  mutable durable : Lxu_storage.Wal_store.t option;  (* WAL home, when durability is on *)
  mutable pstore : Lxu_storage.Page_store.t option;  (* page store, when storage is paged *)
  mutable epoch : int;  (* committed update operations so far — the MVCC version number *)
}

type query_stats = {
  pair_count : int;
  cross_pairs : int;
  in_pairs : int;
  segments_skipped : int;
  elements_scanned : int;
}

(* A paged index backend never re-attaches durable trees outside
   recovery: every fresh log built here (create, load, pack, rebuild)
   clears the store's previous trees and re-indexes into new pages. *)
let spec_of_pstore = function
  | None -> Lxu_btree.Storage_backend.Mem
  | Some ps -> Lxu_btree.Storage_backend.Paged { store = ps; attach = false }

let make_backend ~index_attributes ?cache_bytes ~pstore = function
  | LD ->
    Log
      (Update_log.create ~mode:Update_log.Lazy_dynamic ~index_attributes ?cache_bytes
         ~backend:(spec_of_pstore pstore) ())
  | LS ->
    Log
      (Update_log.create ~mode:Update_log.Lazy_static ~index_attributes ?cache_bytes
         ~backend:(spec_of_pstore pstore) ())
  | STD -> Store (Interval_store.create ~index_attributes ())

let storage_from_env () =
  match Sys.getenv_opt "LXU_STORAGE" with
  | Some s when String.lowercase_ascii (String.trim s) = "paged" -> `Paged
  | _ -> `Mem

let pages_path dir = Filename.concat dir "pages"

let mkdir_p dir =
  let rec make d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  make dir

(* The page device: a real file beside the WAL when the database is
   durable (so pages survive restarts and recovery can re-attach), an
   in-memory device otherwise (paged still bounds index RAM by the
   pool budget — the beyond-RAM discipline without persistence). *)
let fresh_pstore ~durability =
  let device =
    match durability with
    | `None -> Lxu_storage.Sim_file.in_memory ()
    | `Wal dir ->
      mkdir_p dir;
      Lxu_storage.Sim_file.open_path (pages_path dir)
  in
  Lxu_storage.Page_store.create ~device ()

let mode_of_engine = function
  | LD -> Update_log.Lazy_dynamic
  | LS -> Update_log.Lazy_static
  | STD -> invalid_arg "Lazy_db: the STD engine keeps no reconstructible state"

let create ?(engine = LD) ?(index_attributes = false) ?pack_threshold ?domains
    ?(durability = `None) ?cache_bytes ?storage () =
  (match pack_threshold with
  | Some k when k < 1 -> invalid_arg "Lazy_db.create: pack_threshold < 1"
  | _ -> ());
  let storage = match storage with Some s -> s | None -> storage_from_env () in
  if storage = `Paged && engine = STD then
    invalid_arg "Lazy_db.create: paged storage requires a lazy engine (LD or LS)";
  let domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Lazy_db.create: domains < 1";
      d
    | None -> Option.value (Lxu_util.Domain_pool.env_domains ()) ~default:1
  in
  let durable =
    match durability with
    | `None -> None
    | `Wal dir ->
      if engine = STD then
        invalid_arg "Lazy_db.create: durability requires a lazy engine (LD or LS)";
      Some
        (Lxu_storage.Wal_store.fresh ~dir ~mode:(mode_of_engine engine) ~index_attributes)
  in
  let pstore = match storage with `Mem -> None | `Paged -> Some (fresh_pstore ~durability) in
  { engine; backend = make_backend ~index_attributes ?cache_bytes ~pstore engine; pack_threshold;
    domains; pool = None; durable; pstore; epoch = 0 }

let engine t = t.engine
let domains t = t.domains
let epoch t = t.epoch

let is_snapshot t =
  match t.backend with Log log -> Update_log.is_frozen log | Store _ -> false

let snapshot_guard t who =
  if is_snapshot t then invalid_arg (who ^ ": frozen snapshot, updates go to the live database")

(* Every successful update commits one epoch: the counter bumps, and
   the cache learns the new epoch so this operation's segment
   invalidations retire exactly there — snapshots pinned at or below
   the previous epoch keep their versions.  The WAL record (when
   durability is on) is already written by the caller; epoch numbers
   are session-local and never persisted. *)
let commit_epoch t =
  t.epoch <- t.epoch + 1;
  match t.backend with
  | Log log -> Seg_cache.publish (Update_log.cache log) ~epoch:t.epoch
  | Store _ -> ()

(* Parallel queries draw on the process-wide shared pool for their
   domain count: databases are cheap and numerous, domains are neither
   (OCaml caps them at 128), so per-database pools would not fly. *)
let pool_of t =
  if t.domains <= 1 then None
  else
    match t.pool with
    | Some _ as p -> p
    | None ->
      let p = Lxu_util.Domain_pool.shared ~size:t.domains in
      t.pool <- Some p;
      Some p

let query_pool = pool_of

(* The WAL records an operation only after the in-memory apply
   validates it (bounds, well-formedness): the log must replay
   cleanly, so it never holds a record for an update that was
   rejected.  A crash between apply and commit loses at most the
   uncommitted tail — indistinguishable from crashing just before
   those updates. *)
let log_op t op =
  match t.durable with None -> () | Some s -> Lxu_storage.Wal_store.log_op s op

(* Forward declaration for the auto-packing hook. *)
let rec insert t ~gp text =
  (match t.backend with
  | Log log -> ignore (Update_log.insert log ~gp text)
  | Store store -> Interval_store.insert store ~gp text);
  log_op t (Lxu_storage.Wal.Insert { gp; text });
  maybe_pack t;
  commit_epoch t

and insert_many t edits =
  match edits with
  | [] -> ()
  | [ (gp, text) ] -> insert t ~gp text
  | _ ->
    (match t.backend with
    | Log log -> ignore (Update_log.insert_batch ?pool:(pool_of t) log edits)
    | Store store ->
      (* STD has no batched path (global relabelling dominates anyway):
         apply one at a time. *)
      List.iter (fun (gp, text) -> Interval_store.insert store ~gp text) edits);
    (* One WAL record group, one flush: the lazy-engine apply above is
       all-or-nothing, so either every record describes an applied edit
       or none was logged. *)
    (match t.durable with
    | None -> ()
    | Some s ->
      Lxu_storage.Wal_store.log_ops s
        (List.map (fun (gp, text) -> Lxu_storage.Wal.Insert { gp; text }) edits));
    maybe_pack t;
    commit_epoch t

and remove t ~gp ~len =
  (match t.backend with
  | Log log -> Update_log.remove log ~gp ~len
  | Store store -> Interval_store.remove store ~gp ~len);
  log_op t (Lxu_storage.Wal.Remove { gp; len });
  maybe_pack t;
  commit_epoch t

(* The paper's "maintenance hours" automated: past the threshold the
   whole database is re-indexed as a single segment. *)
and maybe_pack t =
  match (t.pack_threshold, t.backend) with
  | Some k, Log log when Update_log.segment_count log > k ->
    (* Materialize before creating the fresh log: with paged storage
       the new log's indexes clear the store's previous trees, after
       which the old log's index handles are dead. *)
    let whole = Update_log.materialize log in
    let fresh =
      Update_log.create ~mode:(Update_log.mode log)
        ~index_attributes:(Update_log.indexes_attributes log)
        ~cache_bytes:(Seg_cache.max_bytes (Update_log.cache log))
        ~backend:(spec_of_pstore t.pstore) ()
    in
    if whole <> "" then ignore (Update_log.insert fresh ~gp:0 whole);
    t.backend <- Log fresh
  | _ -> ()

let doc_length t =
  match t.backend with
  | Log log -> Update_log.doc_length log
  | Store store -> Interval_store.doc_length store

let element_count t =
  match t.backend with
  | Log log -> Update_log.element_count log
  | Store store -> Interval_store.element_count store

let segment_count t =
  match t.backend with Log log -> Update_log.segment_count log | Store _ -> 0

let query t ?(axis = Descendant) ?guard ~anc ~desc () =
  match t.backend with
  | Log log ->
    let jaxis = match axis with Descendant -> Lxu_join.Lazy_join.Descendant | Child -> Lxu_join.Lazy_join.Child in
    let pairs, stats = Lxu_join.Lazy_join.run ~axis:jaxis ?pool:(pool_of t) ?guard log ~anc ~desc () in
    let global = Lxu_join.Lazy_join.global_pairs log pairs in
    ( global,
      {
        pair_count = List.length global;
        cross_pairs = stats.Lxu_join.Lazy_join.cross_pairs;
        in_pairs = stats.Lxu_join.Lazy_join.in_pairs;
        segments_skipped = stats.Lxu_join.Lazy_join.segments_skipped;
        elements_scanned = stats.Lxu_join.Lazy_join.elements_fetched;
      } )
  | Store store ->
    let jaxis = match axis with Descendant -> Lxu_join.Stack_tree_desc.Descendant | Child -> Lxu_join.Stack_tree_desc.Child in
    Lxu_util.Deadline.check_opt guard;
    let a = Interval_store.elements store ~tag:anc in
    let d = Interval_store.elements store ~tag:desc in
    let pairs, stats = Lxu_join.Stack_tree_desc.join ~axis:jaxis ~anc:a ~desc:d () in
    let global =
      pairs
      |> List.map (fun ((a : Interval.t), (d : Interval.t)) -> (a.Interval.start, d.Interval.start))
      |> List.sort (fun (a1, d1) (a2, d2) -> compare (d1, a1) (d2, a2))
    in
    ( global,
      {
        pair_count = List.length global;
        cross_pairs = 0;
        in_pairs = List.length global;
        segments_skipped = 0;
        elements_scanned =
          stats.Lxu_join.Stack_tree_desc.a_scanned + stats.Lxu_join.Stack_tree_desc.d_scanned;
      } )

(* Cardinality without the local->global translation of [query]: the
   join itself produces label pairs; counting needs no conversion. *)
let count t ?(axis = Descendant) ?guard ~anc ~desc () =
  match t.backend with
  | Log log ->
    let jaxis = match axis with Descendant -> Lxu_join.Lazy_join.Descendant | Child -> Lxu_join.Lazy_join.Child in
    let pairs, _ = Lxu_join.Lazy_join.run ~axis:jaxis ?pool:(pool_of t) ?guard log ~anc ~desc () in
    Array.length pairs
  | Store store ->
    let jaxis = match axis with Descendant -> Lxu_join.Stack_tree_desc.Descendant | Child -> Lxu_join.Stack_tree_desc.Child in
    Lxu_util.Deadline.check_opt guard;
    let a = Interval_store.elements store ~tag:anc in
    let d = Interval_store.elements store ~tag:desc in
    let _, stats = Lxu_join.Stack_tree_desc.join ~axis:jaxis ~anc:a ~desc:d () in
    stats.Lxu_join.Stack_tree_desc.pairs

let text t =
  match t.backend with
  | Log log -> Update_log.materialize log
  | Store _ ->
    invalid_arg "Lazy_db.text: the STD engine keeps labels only, not the document text"

let rebuild t =
  snapshot_guard t "Lazy_db.rebuild";
  match t.backend with
  | Store _ -> ()
  | Log log ->
    let whole = Update_log.materialize log in
    let mode = Update_log.mode log in
    let fresh =
      Update_log.create ~mode ~index_attributes:(Update_log.indexes_attributes log)
        ~cache_bytes:(Seg_cache.max_bytes (Update_log.cache log))
        ~backend:(spec_of_pstore t.pstore) ()
    in
    if whole <> "" then ignore (Update_log.insert fresh ~gp:0 whole);
    t.backend <- Log fresh;
    log_op t Lxu_storage.Wal.Rebuild;
    commit_epoch t

let pack_subtree t ~gp ~len =
  snapshot_guard t "Lazy_db.pack_subtree";
  match t.backend with
  | Store _ -> ()
  | Log log ->
    let whole = Update_log.materialize log in
    if gp < 0 || len <= 0 || gp + len > String.length whole then
      invalid_arg "Lazy_db.pack_subtree: range out of bounds";
    let slice = String.sub whole gp len in
    Update_log.remove log ~gp ~len;
    ignore (Update_log.insert log ~gp slice);
    (* One logical record: replay re-executes the pack, keeping the
       recovered segment structure identical.  The remove + insert pair
       above is one logical update, so it commits one epoch: a reader
       pinned below it sees the whole pre-pack state. *)
    log_op t (Lxu_storage.Wal.Pack { gp; len });
    commit_epoch t

let log t = match t.backend with Log log -> Some log | Store _ -> None
let store t = match t.backend with Store s -> Some s | Log _ -> None

(* A snapshot is a full Lazy_db over a frozen clone of the log, pinned
   at the current epoch: queries run the same engines over the same
   shared cache, just with epoch-pinned lookups.  No durability handle
   and no pack threshold — snapshots never write. *)
let snapshot t =
  match t.backend with
  | Store _ ->
    invalid_arg "Lazy_db.snapshot: the STD engine keeps no versioned state (use LD or LS)"
  | Log log ->
    let frozen = Update_log.freeze log ~epoch:t.epoch in
    (* No pstore either: frozen clones keep in-memory indexes (they
       materialize from shared segment skeletons), so snapshot reads
       never touch — or pin — the live database's page store. *)
    { engine = t.engine; backend = Log frozen; pack_threshold = None; domains = t.domains;
      pool = None; durable = None; pstore = None; epoch = t.epoch }

let with_snapshot t f = f (snapshot t)

let cache_stats t =
  match t.backend with
  | Log log -> Some (Seg_cache.stats (Update_log.cache log))
  | Store _ -> None

let size_bytes t =
  match t.backend with
  | Log log -> Update_log.size_bytes log + Element_index.size_bytes (Update_log.element_index log)
  | Store store -> Interval_store.element_count store * 3 * 8

let check t =
  match t.backend with
  | Log log -> Update_log.check log
  | Store store -> Interval_store.check store

let save t path =
  match t.backend with
  | Store _ -> invalid_arg "Lazy_db.save: the STD engine keeps no reconstructible state"
  | Log lg ->
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Update_log.save lg oc)

let resolve_domains ~who domains =
  match domains with
  | Some d ->
    if d < 1 then invalid_arg (who ^ ": domains < 1");
    d
  | None -> Option.value (Lxu_util.Domain_pool.env_domains ()) ~default:1

let of_log ?domains lg =
  let engine =
    match Update_log.mode lg with Update_log.Lazy_dynamic -> LD | Update_log.Lazy_static -> LS
  in
  { engine; backend = Log lg; pack_threshold = None;
    domains = resolve_domains ~who:"Lazy_db.of_log" domains; pool = None; durable = None;
    pstore = None; epoch = 0 }

let checkpoint t =
  match (t.durable, t.backend) with
  | None, _ ->
    invalid_arg "Lazy_db.checkpoint: database has no WAL (create with ~durability:(`Wal dir))"
  | Some _, Store _ -> assert false (* create rejects STD + durability *)
  | Some s, Log log ->
    let page_checkpoint =
      Option.map (fun ps lsn -> Lxu_storage.Page_store.checkpoint ps ~lsn) t.pstore
    in
    Lxu_storage.Wal_store.checkpoint ?page_checkpoint s log

let batch t f =
  match t.durable with None -> f () | Some s -> Lxu_storage.Wal_store.batch s f

let wal_dir t = Option.map Lxu_storage.Wal_store.dir t.durable
let wal_bytes t = Option.map Lxu_storage.Wal_store.wal_bytes t.durable

let backup t ~dir =
  match t.durable with
  | None ->
    invalid_arg "Lazy_db.backup: database has no WAL (create with ~durability:(`Wal dir))"
  | Some s -> Lxu_storage.Wal_store.backup s ~dir

let storage_kind t = match t.pstore with None -> `Mem | Some _ -> `Paged
let page_store t = t.pstore
let page_stats t = Option.map Lxu_storage.Page_store.stats t.pstore

let close t =
  (match t.durable with None -> () | Some s -> Lxu_storage.Wal_store.close s);
  match t.pstore with None -> () | Some ps -> Lxu_storage.Page_store.close ps

let load ?domains ?(durability = `None) ?storage path =
  let storage = match storage with Some s -> s | None -> storage_from_env () in
  let pstore = match storage with `Mem -> None | `Paged -> Some (fresh_pstore ~durability) in
  let ic = open_in_bin path in
  let lg =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        (* Re-raise snapshot errors with the offending file: the
           messages carry the byte offset, this adds which file. *)
        try Update_log.load ~backend:(spec_of_pstore pstore) ic
        with Failure msg -> failwith (Printf.sprintf "Lazy_db.load: %s: %s" path msg))
  in
  let t = of_log ?domains lg in
  t.pstore <- pstore;
  (match durability with
  | `None -> ()
  | `Wal dir ->
    let s =
      Lxu_storage.Wal_store.fresh ~dir ~mode:(Update_log.mode lg)
        ~index_attributes:(Update_log.indexes_attributes lg)
    in
    t.durable <- Some s;
    (* The WAL dir starts from this snapshot, not from empty: write
       the base checkpoint immediately (page store included) so
       recovery has it. *)
    checkpoint t);
  t

let recover ?domains ?storage dir =
  let storage = match storage with Some s -> s | None -> storage_from_env () in
  let pstore =
    match storage with
    | `Mem -> None
    | `Paged ->
      let device = Lxu_storage.Sim_file.open_path ~append:true (pages_path dir) in
      let ps =
        try Lxu_storage.Page_store.open_existing ~device ()
        with Failure _ | Lxu_storage.Page_file.Torn_page _ ->
          (* Missing, torn or unreadable pages file.  The snapshot +
             WAL can rebuild every index, so start the store over —
             truncating first so no stale meta page can win a future
             open. *)
          Lxu_storage.Sim_file.truncate_to device 0;
          Lxu_storage.Page_store.create ~device ()
      in
      Some ps
  in
  let lg, store, report = Lxu_storage.Wal_store.recover ?pstore ~dir () in
  let t = of_log ?domains lg in
  t.durable <- Some store;
  t.pstore <- pstore;
  (t, report)

let restore_to ?domains ~lsn dir =
  let lg, report = Lxu_storage.Wal_store.restore_to ~dir ~lsn in
  (* Deliberately no durability handle: the restored state is a point
     in the middle of [dir]'s history — appending to its WAL would
     fork it with non-monotonic LSNs.  Persist via [save]/[load]. *)
  (of_log ?domains lg, report)
