(** Lazy XML database — the paper's system behind one facade.

    A database is a single {e super document} edited by inserting and
    removing well-formed XML segments at byte positions, exactly the
    text-editing model of §1.  Three engines implement the same
    interface:

    {ul
    {- [LD] (lazy dynamic): the update log of §3 kept query-ready on
       every update; queries run Lazy-Join (§4.2).}
    {- [LS] (lazy static): updates maintain only the ER-tree; tag lists
       are sorted and the SB-tree rebuilt at query time (§5.1).}
    {- [STD] (traditional): global interval labels relabelled on every
       update; queries run Stack-Tree-Desc — the baseline the paper
       compares against.}}

    Queries are single structural joins [anc//desc] or [anc/desc],
    the primitive the paper (and the structural-join literature it
    builds on) optimizes. *)

type engine = LD | LS | STD
type axis = Descendant | Child

type t

type query_stats = {
  pair_count : int;
  cross_pairs : int;  (** cross-segment pairs (0 for [STD]) *)
  in_pairs : int;
      (** in-segment pairs (every pair, for the segment-less [STD]) *)
  segments_skipped : int;  (** SL_A segments pruned by Lazy-Join *)
  elements_scanned : int;
}

val create :
  ?engine:engine ->
  ?index_attributes:bool ->
  ?pack_threshold:int ->
  ?domains:int ->
  ?durability:[ `None | `Wal of string ] ->
  ?cache_bytes:int ->
  ?storage:[ `Mem | `Paged ] ->
  unit ->
  t
(** An empty database; [engine] defaults to [LD].  With
    [~index_attributes:true] attributes are indexed as subelements
    named ["@name"] and can appear in queries (e.g. [~desc:"@id"]).
    [pack_threshold] automates the paper's "maintenance hours": after
    any update leaving more than that many segments, the database is
    re-indexed as a single segment (ignored by [STD]).

    [domains] sets the degree of query parallelism for the lazy
    engines: with [domains > 1] Lazy-Join runs its per-segment join
    units on a process-wide shared domain pool of that size (see
    {!Lxu_util.Domain_pool}), returning results identical to the
    sequential path.  Defaults to the [LXU_DOMAINS] environment
    variable, or 1 (fully sequential) when unset.  The [STD] engine's
    Stack-Tree-Desc baseline works on one global interval list whose
    merge carries stack state across the whole scan, so it stays
    sequential regardless of [domains].

    [durability] (default [`None]) makes every update crash-safe:
    with [`Wal dir] the database owns directory [dir], appending one
    checksummed record per {!insert}/{!remove}/{!pack_subtree}/
    {!rebuild} to a write-ahead log there (see {!Lxu_storage.Wal}),
    so {!recover} restores the state after a crash.  [`Wal] starts
    [dir] fresh — use {!recover} to resume an existing one.
    Auto-packing via [pack_threshold] is {e not} logged: it never
    changes the document text, and recovery reproduces query-visible
    state, not internal segmentation chosen by thresholds.

    [cache_bytes] bounds the lazy engines' read-side element cache
    (see {!Lxu_seglog.Seg_cache}; default
    {!Lxu_seglog.Seg_cache.default_max_bytes}, [<= 0] disables it).
    The setting survives re-indexing ({!rebuild}, [pack_threshold]);
    ignored by [STD].  Caching never changes results or join
    statistics — only which fetches hit memory instead of the element
    index.

    [storage] picks where the big indexes live.  [`Mem] (the default)
    keeps the element index and SB-tree on the OCaml heap.  [`Paged]
    puts them on copy-on-write pages in a {!Lxu_storage.Page_store}
    whose RAM residency is bounded by the buffer-pool budget
    ([LXU_POOL_BYTES]) — the beyond-RAM path: with [`Wal dir]
    durability the pages live in [dir/pages] and {!checkpoint} makes
    them durable alongside the snapshot; without durability they live
    on an in-memory device (bounded residency, no persistence).
    Defaults to the [LXU_STORAGE] environment variable ([paged]
    selects [`Paged]), or [`Mem] when unset.  Results are
    fingerprint-identical across backends.
    @raise Invalid_argument if [pack_threshold < 1], [domains < 1],
    or [durability] or [`Paged] storage is combined with the [STD]
    engine (which keeps no reconstructible state). *)

val engine : t -> engine

val domains : t -> int
(** The configured query parallelism (1 = sequential). *)

val query_pool : t -> Lxu_util.Domain_pool.t option
(** The shared domain pool {!query} draws on, created lazily on first
    use: [None] iff [domains <= 1].  Exposed so planned path
    evaluation can run its joins with the same parallelism as direct
    queries. *)

(** {2 MVCC snapshots}

    Every successful update ({!insert}, {!insert_many}, {!remove},
    {!rebuild}, {!pack_subtree}) commits one {e epoch} — a
    session-local version number published to the read-side element
    cache, so the segment invalidations of epoch [e] take effect
    exactly at [e] and snapshots pinned below keep their versions. *)

val epoch : t -> int
(** Committed update operations so far (0 for a fresh database); for a
    {!snapshot}, the epoch it is pinned at. *)

val snapshot : t -> t
(** An immutable snapshot of the database at its current epoch: a
    frozen clone of the update log (segment texts and element arrays
    shared, bookkeeping copied) served by the same query engines and
    the same element cache, with every columnar lookup pinned at the
    snapshot's epoch.  Queries on the snapshot and updates on the live
    database may run concurrently from different domains without any
    lock — {!Shared_db} builds its lock-free reader path on exactly
    this.  Updates and maintenance on the snapshot raise
    [Invalid_argument]; queries, counts, {!text}, {!check} and
    {!save} all work.
    @raise Invalid_argument for the [STD] engine, which keeps no
    versioned state. *)

val with_snapshot : t -> (t -> 'a) -> 'a
(** [with_snapshot t f] runs [f] on {!snapshot}[ t] — the multi-op
    read-transaction surface: every query [f] issues sees the same
    epoch no matter how many updates commit meanwhile. *)

val is_snapshot : t -> bool

val insert : t -> gp:int -> string -> unit
(** Inserts a well-formed fragment at global byte position [gp].
    @raise Invalid_argument on out-of-bounds positions or empty text.
    @raise Lxu_xml.Parser.Parse_error on ill-formed text. *)

val insert_many : t -> (int * string) list -> unit
(** [insert_many t edits] applies the [(gp, text)] inserts in order,
    equivalent to — and fingerprint-identical with — calling {!insert}
    for each, but through the batched write path: one parse fan-out
    (over the database's domain pool), one bulk merge into each index
    (see {!Lxu_seglog.Update_log.insert_batch}), and one WAL record
    group persisted with a single flush.  A crash mid-batch recovers a
    prefix of the batch.

    For the lazy engines the batch is all-or-nothing: on
    [Invalid_argument] or [Parse_error] no edit is applied and nothing
    is logged.  The [STD] engine applies edits one at a time (no
    batched path; it is the paper's baseline) and may stop mid-list on
    an invalid edit.
    @raise Invalid_argument / [Parse_error] as {!insert}, with gp
    bounds checked against the document as it will be after the
    preceding edits of the batch. *)

val remove : t -> gp:int -> len:int -> unit
(** Removes the byte range [gp, gp+len), which must be a well-formed
    fragment of the current document. *)

val query :
  t ->
  ?axis:axis ->
  ?guard:Lxu_util.Deadline.guard ->
  anc:string ->
  desc:string ->
  unit ->
  (int * int) list * query_stats
(** [query t ~anc ~desc ()] evaluates [anc//desc] (or [anc/desc] with
    [~axis:Child]) and returns [(anc_gstart, desc_gstart)] pairs sorted
    by [(desc, anc)], plus evaluation statistics.

    [guard] makes the join cooperative (see {!Lxu_join.Lazy_join.run}):
    evaluation raises [Lxu_util.Deadline.Cancel.Cancelled] promptly on
    a cancel or deadline expiry instead of running to completion.
    Without it, behaviour and cost are exactly as before. *)

val count :
  t -> ?axis:axis -> ?guard:Lxu_util.Deadline.guard -> anc:string -> desc:string -> unit -> int
(** Result cardinality of the join.  [guard] as in {!query}. *)

val doc_length : t -> int
val element_count : t -> int

val segment_count : t -> int
(** Live segments (always 1 after {!rebuild}; 0 for [STD] engines and
    empty documents). *)

val text : t -> string
(** The full super-document text. *)

val rebuild : t -> unit
(** The "maintenance hours" operation of §1: re-indexes the whole
    database as a single segment and clears the update log.  No-op for
    [STD]. *)

val pack_subtree : t -> gp:int -> len:int -> unit
(** Segment packing (the future-work direction of §6): collapses every
    segment overlapping the byte range [gp, gp+len) — which must be a
    well-formed fragment — into a single segment, reducing the segment
    count at the cost of re-indexing that range.  No-op for [STD]. *)

val log : t -> Lxu_seglog.Update_log.t option
(** The underlying update log ([None] for [STD]). *)

val store : t -> Lxu_labeling.Interval_store.t option
(** The underlying traditional store ([None] for lazy engines). *)

val cache_stats : t -> Lxu_seglog.Seg_cache.stats option
(** Read-side cache counters of the current log ([None] for [STD]).
    Counters reset when the log is replaced ({!rebuild}, auto-pack,
    {!load}, {!recover} — all of which also start the cache cold). *)

val size_bytes : t -> int
(** Footprint of the index structures (update log, or interval store). *)

val check : t -> unit
(** Full invariant check (test helper). *)

val save : t -> string -> unit
(** [save t path] writes a snapshot of a lazy-engine database —
    segment structure, immutable local labels, tombstones — to [path].
    @raise Invalid_argument for the [STD] engine, which keeps no
    reconstructible state. *)

val load :
  ?domains:int ->
  ?durability:[ `None | `Wal of string ] ->
  ?storage:[ `Mem | `Paged ] ->
  string ->
  t
(** Restores a database saved with {!save}; queries, updates and local
    labels behave exactly as before the save.  [domains] and [storage]
    as in {!create} (a save file carries no storage kind — the indexes
    are rebuilt into whichever backend is requested).  With
    [~durability:(`Wal dir)] the loaded state immediately becomes the
    base checkpoint of a fresh WAL directory, and subsequent updates
    are logged there.
    @raise Failure on a malformed snapshot; the message includes the
    file path and byte offset.
    @raise Sys_error if the file cannot be read. *)

(** {2 Durability}

    With [~durability:(`Wal dir)], the database's persistent state is
    [dir/snapshot] (the last {!checkpoint}, tagged with its LSN) plus
    [dir/wal] (one checksummed record per update since).  {!recover}
    reads both, replays the WAL suffix past the snapshot's LSN, and
    truncates any torn or corrupt tail at the first invalid record —
    the crash-safety contract exercised by the fault-injection
    harness in [test/]. *)

val checkpoint : t -> unit
(** Snapshots the current state into the WAL directory and rotates
    the log to empty, bounding recovery time.  Crash-safe at every
    step (temp-file renames; recovery skips already-snapshotted
    records).  On a paged database the page store is checkpointed
    first at the same LSN — a flush of dirty pages plus one meta-page
    write, {e not} a rewrite of the whole index — so {!recover} can
    re-attach the paged indexes instead of rebuilding them.
    @raise Invalid_argument if the database has no WAL. *)

val batch : t -> (unit -> 'a) -> 'a
(** Group commit: updates performed by [f] are logged but only
    persisted — as a single device write — when [f] returns.  A crash
    mid-batch recovers a prefix of the batch.  Without durability,
    just runs [f].  Not reentrant. *)

val recover :
  ?domains:int -> ?storage:[ `Mem | `Paged ] -> string -> t * Lxu_storage.Recovery.report
(** [recover dir] restores the database whose durability directory is
    [dir] and reopens its WAL for appending, repairing (truncating) a
    torn tail in place.  The report says what was replayed, skipped
    and discarded.

    With [`Paged] storage (explicit or via [LXU_STORAGE]) the page
    store at [dir/pages] is reopened: when its durable checkpoint LSN
    matches the snapshot's, the paged indexes are {e attached} as-is —
    recovery cost proportional to the WAL suffix, not the index size;
    on any mismatch (crash between the page checkpoint and the
    snapshot, missing or torn pages file) the indexes are rebuilt into
    a reset store, which is slower but always sound.
    @raise Failure when [dir] holds nothing recoverable. *)

val wal_dir : t -> string option
(** The durability directory, when the database has one. *)

val storage_kind : t -> [ `Mem | `Paged ]

val page_store : t -> Lxu_storage.Page_store.t option
(** The copy-on-write page store backing the indexes ([None] under
    [`Mem] storage and on snapshots). *)

val page_stats : t -> Lxu_storage.Page_store.stats option
(** Page-store counters — pages, free lists, generation, buffer-pool
    hits/evictions — when the database is paged. *)

val wal_bytes : t -> int option
(** Current size of the live WAL file, when the database has one — the
    maintenance scheduler's rolling-checkpoint trigger. *)

val backup : t -> dir:string -> int
(** [backup t ~dir] ships the durable state — snapshot (if any) plus
    the committed WAL — into directory [dir] via atomic renames (see
    {!Lxu_storage.Wal_store.backup}) and returns the last committed
    LSN.  Call with the database quiescent (e.g. inside
    {!Shared_db.write}).
    @raise Invalid_argument without durability, inside {!batch}, or
    when [dir] is the live directory. *)

val restore_to :
  ?domains:int -> lsn:int -> string -> t * Lxu_storage.Recovery.report
(** [restore_to ~lsn dir] is point-in-time restore: rebuilds the
    database exactly as of committed LSN [lsn] from [dir] (a live
    durability directory or a {!backup}), replaying the WAL prefix and
    skipping everything past [lsn].  [dir] is never written, and the
    returned database has {e no} durability handle — it is a read-only
    reconstruction of a point in the middle of [dir]'s history;
    persist it with {!save}/{!load} if it should become a new line of
    history.
    @raise Failure when [dir] holds nothing recoverable or its
    snapshot already covers more history than [lsn]. *)

val close : t -> unit
(** Commits any buffered WAL records and closes the log file.  No-op
    without durability; idempotent. *)

val of_log : ?domains:int -> Lxu_seglog.Update_log.t -> t
(** Wraps an existing update log (engine inferred from its mode, no
    durability) — the hook the recovery test harness uses to query
    logs it rebuilt by hand. *)
