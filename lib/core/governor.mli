(** Resource governance over a {!Shared_db}: bounded admission,
    per-operation deadlines, cooperative cancellation, and graceful
    overload shedding.

    The paper makes updates cheap but leaves query cost unbounded — a
    single structural join over a hot tag list can monopolize the
    system.  The governor closes that gap for the live traffic path:

    Admission bounds {e work in flight}, not access: since
    {!Shared_db} went MVCC, readers run lock-free against pinned
    snapshots and only writers serialize among themselves, so the
    governor's slots ration CPU and memory, never mutual exclusion.

    {ul
    {- {b Bounded readers}: at most [max_readers] queries in flight;
       an arriving read past the bound is {e shed} immediately with
       {!rejection.Overloaded} instead of queueing — saturation
       degrades into fast typed errors, callers retry with backoff.
       An admitted reader holds its slot while it queries its pinned
       snapshot; it never waits on — or delays — a writer.}
    {- {b Bounded writer queue}: at most [max_writer_queue] updates
       admitted (queued or running); beyond that, [Overloaded].
       Admitted writers serialize on the {!Shared_db} writer lock as
       before — updates are tiny under the lazy scheme, so the queue
       drains quickly.}
    {- {b Deadlines and cancellation}: every operation takes an
       optional per-op deadline (or the config default) and an
       optional {!Lxu_util.Deadline.Cancel.t}; both are folded into a
       guard that the join loops check cooperatively, so a runaway
       query stops within one loop iteration / pool chunk and returns
       {!rejection.Timed_out} or {!rejection.Cancelled}.  A token
       already fired (or a deadline already passed) rejects {e at
       admission}, before touching any lock.}}

    Failures are values, never strings or exceptions
    ({!rejection}); {!stats} counts admissions, completions and every
    shed class, so overload behaviour is observable. *)

type rejection =
  | Overloaded of { op : [ `Read | `Write ]; in_flight : int; limit : int }
      (** shed at admission: the in-flight bound was reached *)
  | Timed_out of { after_s : float }
      (** the deadline passed — at admission ([after_s = 0.]) or
          cooperatively inside the operation *)
  | Cancelled of string  (** the token fired, with its reason *)

val rejection_to_string : rejection -> string

type config = {
  max_readers : int;  (** in-flight read bound (shed past it) *)
  max_writer_queue : int;  (** admitted-writer bound (queued + running) *)
  default_deadline_s : float option;
      (** deadline applied when an operation passes none *)
}

val default_config : config
(** [{ max_readers = 64; max_writer_queue = 256;
      default_deadline_s = None }] *)

type stats = {
  admitted_reads : int;
  admitted_writes : int;
  completed_reads : int;
  completed_writes : int;
  rejected_overload : int;
  rejected_timeout : int;
  rejected_cancel : int;
      (** every rejection is counted in exactly one bucket, whether it
          happened at admission or mid-flight *)
  failed : int;
      (** callbacks that escaped with a foreign exception (anything
          other than the guard's cancellation) — the exception is
          re-raised to the caller after the admission slot is
          released.  Accounting is exact: every admitted operation
          ends in exactly one of completed, [rejected_timeout],
          [rejected_cancel], or [failed]. *)
}

type t

val create :
  ?config:config ->
  ?engine:Lazy_db.engine ->
  ?index_attributes:bool ->
  ?domains:int ->
  ?durability:[ `None | `Wal of string ] ->
  unit ->
  t
(** A fresh governed database; the non-config parameters are
    {!Shared_db.create}'s. *)

val wrap : ?config:config -> Shared_db.t -> t
(** Governs an existing shared database.  Operations that bypass the
    governor (direct {!Shared_db} calls) are invisible to its bounds
    and stats. *)

val shared : t -> Shared_db.t
val config : t -> config
val stats : t -> stats

val in_flight : t -> int * int
(** [(readers, writers)] currently admitted — the maintenance
    scheduler's idleness probe: background work proceeds only when the
    gauges say the system has spare capacity, and is shed by the
    normal admission bound otherwise. *)

val read :
  t ->
  ?deadline_s:float ->
  ?cancel:Lxu_util.Deadline.Cancel.t ->
  (Lxu_util.Deadline.guard option -> Lazy_db.t -> 'a) ->
  ('a, rejection) result
(** Admission-bounded snapshot query: the database handed to the
    callback is the newest published snapshot, pinned for the call
    (see {!Shared_db.read}).  The callback receives the
    operation's guard; pass it to {!Lazy_db.query}/{!Lazy_db.count}/
    {!Path_query.eval} (or check it yourself in long loops) so
    deadlines and cancels are observed {e during} the work, not only
    at its boundaries.  A callback that ignores the guard is still
    bounded at admission and completion. *)

val write :
  t ->
  ?deadline_s:float ->
  ?cancel:Lxu_util.Deadline.Cancel.t ->
  (Lxu_util.Deadline.guard option -> Lazy_db.t -> 'a) ->
  ('a, rejection) result
(** Admission-bounded exclusive update.  A write rejected mid-flight
    may have partially applied — compose multi-step updates inside one
    callback and only use sub-operations that are atomic at the
    {!Lazy_db} level, or avoid deadlines on writers (the default). *)

val insert : t -> ?cancel:Lxu_util.Deadline.Cancel.t -> gp:int -> string -> (unit, rejection) result
(** Governed {!Lazy_db.insert}: bounded by the writer queue and the
    token (checked at admission), never by a deadline — an admitted
    update always runs to completion, so rejections are all-or-
    nothing.

    Under write contention, admitted inserts {e coalesce}: the first
    writer to find no commit group open leads one, and inserts
    arriving while it waits for the write lock park as followers
    (still holding their admission slot — a parked insert is an
    admitted one) instead of contending for the lock themselves.  The
    leader applies the whole group through {!Lazy_db.insert_many} —
    one lock hold, one batched index merge, one WAL flush — and hands
    each follower its own outcome; if the batch fails as a whole the
    leader re-runs the edits one by one, so an invalid edit fails only
    its own caller.  Groups are capped (at 64): overflow writers take
    the lock alone.  The batch grows with lock contention and is
    empty when the system is idle, so an uncontended insert behaves
    exactly as before. *)

val insert_many :
  t -> ?cancel:Lxu_util.Deadline.Cancel.t -> (int * string) list -> (unit, rejection) result
(** Governed {!Lazy_db.insert_many}: one admission slot, one write-
    lock hold and one WAL flush for the whole batch.  A caller with a
    batch in hand should prefer this over feeding {!insert} in a loop
    — it skips the coalescing machinery entirely because the batch is
    already formed. *)

val remove :
  t -> ?cancel:Lxu_util.Deadline.Cancel.t -> gp:int -> len:int -> unit -> (unit, rejection) result

val count :
  t ->
  ?deadline_s:float ->
  ?cancel:Lxu_util.Deadline.Cancel.t ->
  ?axis:Lazy_db.axis ->
  anc:string ->
  desc:string ->
  unit ->
  (int, rejection) result
(** Governed {!Lazy_db.count}: the guard is threaded into Lazy-Join's
    loops, so cancellation lands without waiting for the join — and a
    pre-fired token rejects before the read lock is even requested. *)

val path_count :
  t ->
  ?deadline_s:float ->
  ?cancel:Lxu_util.Deadline.Cancel.t ->
  string ->
  (int, rejection) result
(** Governed {!Path_query.count}, guard threaded through every step. *)

val retry :
  ?attempts:int ->
  ?base_ms:float ->
  ?factor:float ->
  ?max_ms:float ->
  ?sleep:(float -> unit) ->
  rng:Lxu_workload.Rng.t ->
  (unit -> ('a, rejection) result) ->
  ('a, rejection) result
(** [retry ~rng f] runs [f] until it succeeds or [attempts] (default
    5) tries are spent, sleeping between tries with jittered
    exponential backoff.  Only [Overloaded] is retried — [Timed_out]
    and [Cancelled] reflect caller intent and return immediately, as
    does the final error.

    The schedule: before retry [k] (1-based), the delay is
    [u * min max_ms (base_ms *. factor ** (k - 1))] milliseconds with
    [u] drawn uniformly from [0.5, 1.0) via [rng] — full-jitter's
    decorrelation with at most a halving of the cap.  Defaults:
    [base_ms = 1.], [factor = 2.], [max_ms = 1000.].  [sleep] (default
    [Unix.sleepf] of milliseconds) is injectable so tests can capture
    the schedule instead of waiting it out. *)
