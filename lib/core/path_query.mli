(** Path expressions over the lazy database.

    The paper's positioning (§1): structural-join results "are later
    used to evaluate other path query expressions".  This module does
    exactly that — it parses a linear XPath subset and evaluates it as
    a left-to-right composition of structural joins, each step
    semi-joining the previous step's matches with the next tag.

    Grammar: [('/' | '//') tag pred* ( ('/' | '//') tag pred* )*] with
    [pred ::= '\[' path '\]']; a leading tag without an axis means
    [//tag], and inside a predicate it means "descendant of the current
    element".  Examples: ["//person//watch"],
    ["/site/people/person\[profile//interest\]/name"],
    ["person\[watches/watch\]\[@id\]"].

    Two evaluation strategies:
    {ul
    {- [Pairwise] (default): one segment-aware Lazy-Join per step on
       lazy engines (Stack-Tree-Desc on the [STD] engine), filtering
       each join's pairs by the surviving ancestor set.}
    {- [Holistic]: one holistic pass over the translated global
       element lists — PathStack for linear paths, TwigStack for paths
       with predicates (the two algorithms of §2's [2]).  Falls back
       to [Pairwise] on the [STD] engine.}}

    Both return the {e final-step matches}: distinct elements of the
    last tag reachable through the whole path, as global
    [(start, stop)] extents in document order. *)

type axis = Desc | Child

type step = { axis : axis; tag : string; predicates : t list }
(** A step with optional existential twig predicates: in
    [person\[profile//interest\]/name], the [person] step carries the
    predicate path [profile//interest]; an element survives the step
    only if every predicate has at least one match below it.  A
    predicate path's leading axis is relative to the step's element
    ([\[b\]] means "has a b descendant", [\[/b\]] "has a b child"). *)

and t = step list

type strategy = Pairwise | Holistic

val parse : string -> (t, string) result
(** @return [Error _] on empty input or malformed syntax. *)

val parse_exn : string -> t

val to_string : t -> string

val eval :
  ?strategy:strategy ->
  ?plan:[ `Auto | `Naive | `Seed of int ] ->
  ?guard:Lxu_util.Deadline.guard ->
  Lazy_db.t ->
  t ->
  (int * int) list
(** Matches of the final step, sorted by start position.  The
    [Holistic] strategy requires a lazy engine ([LD]/[LS]); on [STD]
    it falls back to [Pairwise].

    [plan] controls cost-based planning of [Pairwise] evaluation on
    lazy engines (it is ignored by [Holistic] and on [STD]):
    {ul
    {- [`Auto] (default): {!Lxu_plan.Plan.choose} picks the join order
       (a seed step, joins climbing then descending from it), the
       engine per join, and the push-optimization settings from the
       path-summary synopsis; segments the synopsis proves irrelevant
       are skipped ("selective Proposition 3").  Results are
       fingerprint-identical to the naive order.}
    {- [`Naive]: today's strict left-to-right composition.}
    {- [`Seed k]: force the seed step (clamped), for benchmarking
       hand-picked orders.}}
    Setting the environment variable [LXU_PLAN=naive] forces [`Naive]
    regardless of [plan].

    [guard] makes evaluation cooperative: it is threaded into every
    per-step Lazy-Join and checked between steps and per tag-list
    segment, so evaluation raises [Lxu_util.Deadline.Cancel.Cancelled]
    promptly after a cancel or deadline expiry.
    @raise Invalid_argument on an empty path. *)

val explain :
  ?guard:Lxu_util.Deadline.guard -> Lazy_db.t -> t -> string * (int * int) list
(** Plans the path as [eval ~plan:`Auto], executes it, and returns a
    human-readable rendering of the chosen plan — join order, engine
    and push settings per join, estimated vs actual cardinalities —
    together with the results (identical to [eval]'s).  On [STD] (or
    under [LXU_PLAN=naive]) the string says so and evaluation is
    naive. *)

val eval_string :
  ?strategy:strategy ->
  ?plan:[ `Auto | `Naive | `Seed of int ] ->
  ?guard:Lxu_util.Deadline.guard ->
  Lazy_db.t ->
  string ->
  (int * int) list
(** [parse] + [eval]. @raise Invalid_argument on a syntax error. *)

val count :
  ?strategy:strategy ->
  ?plan:[ `Auto | `Naive | `Seed of int ] ->
  ?guard:Lxu_util.Deadline.guard ->
  Lazy_db.t ->
  string ->
  int
