module Deadline = Lxu_util.Deadline

type rejection =
  | Overloaded of { op : [ `Read | `Write ]; in_flight : int; limit : int }
  | Timed_out of { after_s : float }
  | Cancelled of string

let rejection_to_string = function
  | Overloaded { op; in_flight; limit } ->
    Printf.sprintf "overloaded: %d %s in flight (limit %d)" in_flight
      (match op with `Read -> "reads" | `Write -> "writes")
      limit
  | Timed_out { after_s } -> Printf.sprintf "timed out after %.3fs" after_s
  | Cancelled reason -> Printf.sprintf "cancelled: %s" reason

type config = {
  max_readers : int;
  max_writer_queue : int;
  default_deadline_s : float option;
}

let default_config = { max_readers = 64; max_writer_queue = 256; default_deadline_s = None }

type stats = {
  admitted_reads : int;
  admitted_writes : int;
  completed_reads : int;
  completed_writes : int;
  rejected_overload : int;
  rejected_timeout : int;
  rejected_cancel : int;
  failed : int;
}

(* One writer queued behind an open commit group: its edit, and the
   slot where the group leader deposits its outcome. *)
type pending = {
  p_gp : int;
  p_text : string;
  mutable p_result : (unit, exn) result option;
}

(* Cap on how many followers one leader carries.  Internal (not a
   config knob): past this size the batched log merge already
   amortizes all per-batch costs, and an unbounded group would let a
   firehose of writers stretch one write-lock hold arbitrarily. *)
let max_group = 64

type t = {
  sdb : Shared_db.t;
  cfg : config;
  (* In-flight gauges.  Readers/writers from many domains race on
     admission; plain mutable ints under a mutex keep the bound exact
     (an atomic increment-then-check could overshoot transiently and
     shed a request that actually fit). *)
  gate : Mutex.t;
  mutable readers : int;
  mutable writers : int;
  admitted_reads : int Atomic.t;
  admitted_writes : int Atomic.t;
  completed_reads : int Atomic.t;
  completed_writes : int Atomic.t;
  rejected_overload : int Atomic.t;
  rejected_timeout : int Atomic.t;
  rejected_cancel : int Atomic.t;
  failed : int Atomic.t;
  (* Write coalescing: while a leader waits for the write lock
     ([collecting]), arriving {!insert}s park in [cqueue] instead of
     queueing on the lock themselves; the leader applies the whole
     group through {!Lazy_db.insert_many} under one lock hold. *)
  cmutex : Mutex.t;
  ccond : Condition.t;
  mutable collecting : bool;
  cqueue : pending Queue.t;
}

let wrap ?(config = default_config) sdb =
  if config.max_readers < 1 then invalid_arg "Governor.wrap: max_readers < 1";
  if config.max_writer_queue < 1 then invalid_arg "Governor.wrap: max_writer_queue < 1";
  (match config.default_deadline_s with
  | Some d when d <= 0. -> invalid_arg "Governor.wrap: default_deadline_s <= 0"
  | _ -> ());
  {
    sdb;
    cfg = config;
    gate = Mutex.create ();
    readers = 0;
    writers = 0;
    admitted_reads = Atomic.make 0;
    admitted_writes = Atomic.make 0;
    completed_reads = Atomic.make 0;
    completed_writes = Atomic.make 0;
    rejected_overload = Atomic.make 0;
    rejected_timeout = Atomic.make 0;
    rejected_cancel = Atomic.make 0;
    failed = Atomic.make 0;
    cmutex = Mutex.create ();
    ccond = Condition.create ();
    collecting = false;
    cqueue = Queue.create ();
  }

let create ?config ?engine ?index_attributes ?domains ?durability () =
  wrap ?config (Shared_db.create ?engine ?index_attributes ?domains ?durability ())

let shared t = t.sdb
let config t = t.cfg

let in_flight t =
  Mutex.lock t.gate;
  let r = t.readers and w = t.writers in
  Mutex.unlock t.gate;
  (r, w)

let stats t =
  {
    admitted_reads = Atomic.get t.admitted_reads;
    admitted_writes = Atomic.get t.admitted_writes;
    completed_reads = Atomic.get t.completed_reads;
    completed_writes = Atomic.get t.completed_writes;
    rejected_overload = Atomic.get t.rejected_overload;
    rejected_timeout = Atomic.get t.rejected_timeout;
    rejected_cancel = Atomic.get t.rejected_cancel;
    failed = Atomic.get t.failed;
  }

let reject t r =
  (match r with
  | Overloaded _ -> Atomic.incr t.rejected_overload
  | Timed_out _ -> Atomic.incr t.rejected_timeout
  | Cancelled _ -> Atomic.incr t.rejected_cancel);
  Error r

let of_cancel ~start = function
  | Deadline.Cancel.Timeout -> Timed_out { after_s = Deadline.now () -. start }
  | Deadline.Cancel.User reason -> Cancelled reason

(* Typed pre-admission checks: a fired token or an expired deadline
   rejects before any lock or gauge is touched, so dead requests cost
   nothing and hold nothing. *)
let pre_admission ~cancel ~deadline =
  match Option.bind cancel Deadline.Cancel.reason with
  | Some (Deadline.Cancel.User reason) -> Some (Cancelled reason)
  | Some Deadline.Cancel.Timeout -> Some (Timed_out { after_s = 0. })
  | None ->
    (match deadline with
    | Some d when Deadline.expired d -> Some (Timed_out { after_s = 0. })
    | _ -> None)

let resolve_deadline t deadline_s =
  match deadline_s with
  | Some s -> Some (Deadline.after s)
  | None -> Option.map Deadline.after t.cfg.default_deadline_s

(* Admission for one operation class: bump the gauge if under the
   bound, shed with the observed occupancy otherwise.  Shedding (not
   queueing) is deliberate: the stdlib has no timed condition wait, so
   a queued request could not honour its own deadline while blocked —
   instant typed rejection keeps latency bounded and lets callers
   decide (retry with backoff, degrade, or give up). *)
let admit t ~op =
  Mutex.lock t.gate;
  let admitted, occupancy =
    match op with
    | `Read ->
      if t.readers < t.cfg.max_readers then (
        t.readers <- t.readers + 1;
        (true, t.readers))
      else (false, t.readers)
    | `Write ->
      if t.writers < t.cfg.max_writer_queue then (
        t.writers <- t.writers + 1;
        (true, t.writers))
      else (false, t.writers)
  in
  Mutex.unlock t.gate;
  if admitted then Ok ()
  else
    Error
      (Overloaded
         {
           op;
           in_flight = occupancy;
           limit = (match op with `Read -> t.cfg.max_readers | `Write -> t.cfg.max_writer_queue);
         })

let release t ~op =
  Mutex.lock t.gate;
  (match op with
  | `Read -> t.readers <- t.readers - 1
  | `Write -> t.writers <- t.writers - 1);
  Mutex.unlock t.gate

let run t ~op ?deadline_s ?cancel f =
  let deadline = resolve_deadline t deadline_s in
  match pre_admission ~cancel ~deadline with
  | Some r -> reject t r
  | None ->
    (match admit t ~op with
    | Error r -> reject t r
    | Ok () ->
      let admitted, completed, locked =
        match op with
        | `Read -> (t.admitted_reads, t.completed_reads, Shared_db.read)
        | `Write -> (t.admitted_writes, t.completed_writes, Shared_db.write)
      in
      Atomic.incr admitted;
      let start = Deadline.now () in
      let guard = Deadline.guard ?deadline ?cancel () in
      (* Every exit path — completion, cooperative cancellation, or a
         foreign exception escaping the callback (malformed path,
         parse error, ...) — must return the admission slot, or the
         gauge leaks and the operation class is eventually shed
         forever. *)
      Fun.protect
        ~finally:(fun () -> release t ~op)
        (fun () ->
          match locked t.sdb (fun db -> f guard db) with
          | v ->
            Atomic.incr completed;
            Ok v
          | exception Deadline.Cancel.Cancelled reason -> reject t (of_cancel ~start reason)
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Atomic.incr t.failed;
            Printexc.raise_with_backtrace e bt))

let read t ?deadline_s ?cancel f = run t ~op:`Read ?deadline_s ?cancel f
let write t ?deadline_s ?cancel f = run t ~op:`Write ?deadline_s ?cancel f

(* The group leader: applies its own edit plus every insert that
   parked in [cqueue] while it waited for the write lock — one lock
   hold, one batched log merge, one WAL flush for the whole group.
   The group closes {e inside} the write callback: followers keep
   joining for exactly as long as the lock is contended, so the batch
   grows with load and vanishes when the system is idle. *)
let lead t ~gp ~text =
  let group = ref [] in
  let closed = ref false in
  let apply db (g, x) =
    match Lazy_db.insert db ~gp:g x with () -> Ok () | exception e -> Error e
  in
  match
    Shared_db.write t.sdb (fun db ->
      Mutex.lock t.cmutex;
      t.collecting <- false;
      closed := true;
      let members = List.of_seq (Queue.to_seq t.cqueue) in
      Queue.clear t.cqueue;
      Mutex.unlock t.cmutex;
      group := members;
      let edits = (gp, text) :: List.map (fun p -> (p.p_gp, p.p_text)) members in
      if List.compare_length_with edits 1 > 0 && Lazy_db.engine db <> Lazy_db.STD then (
        match Lazy_db.insert_many db edits with
        | () -> List.map (fun _ -> Ok ()) edits
        | exception _ ->
          (* The batch is all-or-nothing for the lazy engines, so
             nothing was applied: re-run the edits one by one to
             isolate the offender instead of failing the whole group.
             STD never takes the batched path — its one-at-a-time loop
             could stop mid-list, and replaying it would double-apply
             the prefix. *)
          List.map (apply db) edits)
      else List.map (apply db) edits)
  with
  | own :: follower_results ->
    Mutex.lock t.cmutex;
    List.iter2 (fun p r -> p.p_result <- Some r) !group follower_results;
    Condition.broadcast t.ccond;
    Mutex.unlock t.cmutex;
    own
  | [] -> assert false (* edits always starts with the leader's own *)
  | exception e ->
    (* Nothing reached the followers: fail every parked one rather
       than leaving it waiting on the condition forever. *)
    Mutex.lock t.cmutex;
    if not !closed then begin
      t.collecting <- false;
      group := !group @ List.of_seq (Queue.to_seq t.cqueue);
      Queue.clear t.cqueue
    end;
    List.iter (fun p -> if p.p_result = None then p.p_result <- Some (Error e)) !group;
    Condition.broadcast t.ccond;
    Mutex.unlock t.cmutex;
    Error e

(* Updates are never killed mid-flight: they take the writer-queue
   bound and the admission-time token check, but no deadline, so an
   admitted update always completes and rejection is all-or-nothing.
   Under write contention, inserts coalesce: the first writer to find
   no group open becomes the leader; writers arriving while it waits
   for the lock park as followers (still counted against the writer
   queue — a parked insert is an admitted one) and are applied by the
   leader in one batch. *)
let insert t ?cancel ~gp text =
  match pre_admission ~cancel ~deadline:None with
  | Some r -> reject t r
  | None ->
    (match admit t ~op:`Write with
    | Error r -> reject t r
    | Ok () ->
      Atomic.incr t.admitted_writes;
      (* Three ways through: join the open group, overflow past a
         full one, or open a group and lead it. *)
      let join_or_lead () =
        Mutex.lock t.cmutex;
        if t.collecting && Queue.length t.cqueue < max_group then begin
          let cell = { p_gp = gp; p_text = text; p_result = None } in
          Queue.add cell t.cqueue;
          while cell.p_result = None do
            Condition.wait t.ccond t.cmutex
          done;
          Mutex.unlock t.cmutex;
          Option.get cell.p_result
        end
        else if t.collecting then begin
          (* Group full: go through the lock alone rather than
             stretching an already-large batch further. *)
          Mutex.unlock t.cmutex;
          match Shared_db.insert t.sdb ~gp text with
          | () -> Ok ()
          | exception e -> Error e
        end
        else begin
          t.collecting <- true;
          Mutex.unlock t.cmutex;
          lead t ~gp ~text
        end
      in
      Fun.protect
        ~finally:(fun () -> release t ~op:`Write)
        (fun () ->
          match join_or_lead () with
          | Ok () ->
            Atomic.incr t.completed_writes;
            Ok ()
          | Error e ->
            Atomic.incr t.failed;
            raise e))

let insert_many t ?cancel edits =
  run t ~op:`Write ?cancel (fun _guard db -> Lazy_db.insert_many db edits)

let remove t ?cancel ~gp ~len () =
  run t ~op:`Write ?cancel (fun _guard db -> Lazy_db.remove db ~gp ~len)

let count t ?deadline_s ?cancel ?axis ~anc ~desc () =
  read t ?deadline_s ?cancel (fun guard db -> Lazy_db.count db ?axis ?guard ~anc ~desc ())

let path_count t ?deadline_s ?cancel path =
  read t ?deadline_s ?cancel (fun guard db -> Path_query.count ?guard db path)

let retry ?(attempts = 5) ?(base_ms = 1.) ?(factor = 2.) ?(max_ms = 1000.) ?sleep ~rng f =
  if attempts < 1 then invalid_arg "Governor.retry: attempts < 1";
  let sleep = match sleep with Some s -> s | None -> fun ms -> Unix.sleepf (ms /. 1000.) in
  (* Delay before retry k: u * min(max_ms, base_ms * factor^(k-1))
     with u uniform in [0.5, 1.0) — jittered exponential backoff, so a
     burst of shed clients decorrelates instead of re-colliding. *)
  let backoff_ms k =
    let cap = Float.min max_ms (base_ms *. (factor ** float_of_int (k - 1))) in
    let u = 0.5 +. (float_of_int (Lxu_workload.Rng.int rng 1_048_576) /. 2_097_152.) in
    cap *. u
  in
  let rec go k =
    match f () with
    | Ok _ as ok -> ok
    | Error (Overloaded _) when k < attempts ->
      sleep (backoff_ms k);
      go (k + 1)
    | Error _ as err -> err
  in
  go 1
